#include "gen/pigeonhole.h"

namespace msu {

CnfFormula pigeonhole(int pigeons, int holes) {
  CnfFormula cnf(pigeons * holes);
  const auto var = [holes](int pigeon, int hole) -> Var {
    return pigeon * holes + hole;
  };
  // Each pigeon sits somewhere.
  for (int i = 0; i < pigeons; ++i) {
    Clause c;
    for (int j = 0; j < holes; ++j) c.push_back(posLit(var(i, j)));
    cnf.addClause(std::move(c));
  }
  // No hole hosts two pigeons.
  for (int j = 0; j < holes; ++j) {
    for (int i1 = 0; i1 < pigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < pigeons; ++i2) {
        cnf.addClause({negLit(var(i1, j)), negLit(var(i2, j))});
      }
    }
  }
  return cnf;
}

}  // namespace msu
