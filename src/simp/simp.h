/// \file simp.h
/// \brief SatELite-style CNF preprocessing (Eén & Biere): top-level unit
///        propagation, subsumption, self-subsuming resolution (clause
///        strengthening) and bounded variable elimination, with model
///        reconstruction for eliminated variables.
///
/// MiniSat 1.14 — the solver the paper builds msu4 on — shipped exactly
/// this preprocessor as "MiniSat+SatELite"; here it is a standalone
/// library component usable in three roles: ahead of plain SAT solving,
/// on the *hard* clauses of a MaxSAT instance (soft-clause variables
/// frozen, see `preprocessHard`), and inside the instance generators to
/// emit realistically irredundant benchmarks.
///
/// Soundness: the simplified formula is equisatisfiable, and any model
/// of it extends to a model of the original via `reconstruct` (variable
/// elimination is model-preserving given the saved occurrence lists;
/// subsumption and strengthening never lose models).

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cnf/formula.h"
#include "cnf/wcnf.h"

namespace msu {

/// Options for the preprocessor.
struct SimpOptions {
  bool subsumption = true;      ///< remove subsumed clauses
  bool strengthen = true;       ///< self-subsuming resolution
  bool eliminate = true;        ///< bounded variable elimination

  /// A variable is eliminated only if its occurrence count is at most
  /// this (frequent variables produce quadratic resolvent blow-up).
  int bveMaxOccurrences = 24;

  /// ... and only if the surviving resolvents do not outnumber the
  /// removed clauses by more than this many extra clauses.
  int bveGrowthLimit = 0;

  /// Fixpoint rounds over the whole pipeline.
  int maxRounds = 12;
};

/// Statistics of one preprocessing run.
struct SimpStats {
  std::int64_t unitsPropagated = 0;
  std::int64_t subsumed = 0;
  std::int64_t strengthened = 0;
  std::int64_t varsEliminated = 0;
  std::int64_t resolventsAdded = 0;
};

/// CNF preprocessor with model reconstruction.
///
/// Usage:
///   Preprocessor pre(options);
///   CnfFormula simplified = pre.run(original, frozen);
///   ... solve simplified ...
///   Assignment original_model = pre.reconstruct(simplified_model);
class Preprocessor {
 public:
  explicit Preprocessor(SimpOptions options = {});

  /// Simplifies `cnf`. Variables in `frozen` (and all variables when the
  /// formula is detected unsatisfiable) are never eliminated; they keep
  /// their meaning in the result. The result uses the same variable ids
  /// (eliminated variables simply no longer occur).
  [[nodiscard]] CnfFormula run(const CnfFormula& cnf,
                               std::vector<Var> frozen = {});

  /// True iff unsatisfiability was established during preprocessing
  /// (the returned formula then contains an empty clause).
  [[nodiscard]] bool provedUnsat() const { return unsat_; }

  /// Extends a model of the simplified formula to all original
  /// variables (eliminated variables are assigned so every removed
  /// clause is satisfied; unconstrained variables default to false).
  [[nodiscard]] Assignment reconstruct(const Assignment& model) const;

  [[nodiscard]] const SimpStats& stats() const { return stats_; }

 private:
  struct Entry {
    Clause lits;
    std::uint64_t signature = 0;
    bool alive = true;
  };

  [[nodiscard]] static std::uint64_t signatureOf(const Clause& c);
  void attachOccurrences(int id);
  void killClause(int id);
  [[nodiscard]] bool enqueueUnit(Lit p);
  [[nodiscard]] bool propagateUnits();
  void subsumeWith(int id);
  [[nodiscard]] bool strengthenAll();
  [[nodiscard]] bool tryEliminate(Var v);
  [[nodiscard]] bool addDerived(Clause c);

  SimpOptions opts_;
  SimpStats stats_;

  std::vector<Entry> clauses_;
  std::vector<std::vector<int>> occs_;  // literal index -> clause ids
  std::vector<lbool> fixed_;            // top-level assignment
  std::vector<Lit> unitQueue_;
  std::vector<char> frozen_;
  std::vector<char> eliminated_;
  bool unsat_ = false;
  int num_vars_ = 0;

  /// Reconstruction stack: for each eliminated variable, the clauses it
  /// occurred in, processed in reverse on reconstruct().
  struct Elimination {
    Var var = kUndefVar;
    std::vector<Clause> clauses;
  };
  std::vector<Elimination> trail_;
};

/// Convenience: preprocesses the *hard* clauses of a MaxSAT instance with
/// every variable occurring in a soft clause frozen, returning a new
/// instance with the same soft clauses. The mapping back to original
/// variables is the identity (hard-only variables may disappear), so
/// engine models remain directly comparable — but note eliminated
/// variables are unassigned in engine models; use the returned
/// preprocessor's reconstruct() for complete assignments.
[[nodiscard]] std::pair<WcnfFormula, Preprocessor> preprocessHard(
    const WcnfFormula& wcnf, const SimpOptions& options = {});

}  // namespace msu
