#include "simp/simp.h"

#include <algorithm>
#include <cassert>

namespace msu {

namespace {

/// Sorts, deduplicates, and detects tautologies. Returns false when the
/// clause is a tautology (caller drops it).
[[nodiscard]] bool normalizeClause(Clause& c) {
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  for (std::size_t i = 1; i < c.size(); ++i) {
    if (c[i] == ~c[i - 1]) return false;
  }
  return true;
}

}  // namespace

Preprocessor::Preprocessor(SimpOptions options) : opts_(options) {}

std::uint64_t Preprocessor::signatureOf(const Clause& c) {
  std::uint64_t sig = 0;
  for (const Lit p : c) {
    sig |= std::uint64_t{1} << (static_cast<std::uint32_t>(p.var()) % 64u);
  }
  return sig;
}

void Preprocessor::attachOccurrences(int id) {
  for (const Lit p : clauses_[static_cast<std::size_t>(id)].lits) {
    occs_[static_cast<std::size_t>(p.index())].push_back(id);
  }
}

void Preprocessor::killClause(int id) {
  Entry& e = clauses_[static_cast<std::size_t>(id)];
  if (!e.alive) return;
  e.alive = false;
  for (const Lit p : e.lits) {
    auto& list = occs_[static_cast<std::size_t>(p.index())];
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }
}

bool Preprocessor::enqueueUnit(Lit p) {
  lbool& cell = fixed_[static_cast<std::size_t>(p.var())];
  const lbool want = p.positive() ? lbool::True : lbool::False;
  if (cell == want) return true;
  if (cell != lbool::Undef) {
    unsat_ = true;
    return false;
  }
  cell = want;
  unitQueue_.push_back(p);
  ++stats_.unitsPropagated;
  return true;
}

bool Preprocessor::propagateUnits() {
  while (!unitQueue_.empty()) {
    const Lit p = unitQueue_.back();
    unitQueue_.pop_back();
    // Clauses satisfied by p disappear.
    const std::vector<int> sat = occs_[static_cast<std::size_t>(p.index())];
    for (const int id : sat) killClause(id);
    // Clauses containing ~p shrink.
    const std::vector<int> shrink =
        occs_[static_cast<std::size_t>((~p).index())];
    for (const int id : shrink) {
      Entry& e = clauses_[static_cast<std::size_t>(id)];
      if (!e.alive) continue;
      auto& list = occs_[static_cast<std::size_t>((~p).index())];
      list.erase(std::remove(list.begin(), list.end(), id), list.end());
      e.lits.erase(std::remove(e.lits.begin(), e.lits.end(), ~p),
                   e.lits.end());
      e.signature = signatureOf(e.lits);
      if (e.lits.empty()) {
        unsat_ = true;
        return false;
      }
      if (e.lits.size() == 1) {
        const Lit unit = e.lits[0];
        killClause(id);
        if (!enqueueUnit(unit)) return false;
      }
    }
  }
  return true;
}

void Preprocessor::subsumeWith(int id) {
  const Entry& c = clauses_[static_cast<std::size_t>(id)];
  if (!c.alive || c.lits.empty()) return;
  // Scan the occurrence list of c's least-frequent literal.
  Lit best = c.lits[0];
  for (const Lit p : c.lits) {
    if (occs_[static_cast<std::size_t>(p.index())].size() <
        occs_[static_cast<std::size_t>(best.index())].size()) {
      best = p;
    }
  }
  const std::vector<int> candidates =
      occs_[static_cast<std::size_t>(best.index())];
  for (const int other : candidates) {
    if (other == id) continue;
    Entry& d = clauses_[static_cast<std::size_t>(other)];
    if (!d.alive || d.lits.size() < c.lits.size()) continue;
    if ((c.signature & ~d.signature) != 0) continue;
    if (std::includes(d.lits.begin(), d.lits.end(), c.lits.begin(),
                      c.lits.end())) {
      killClause(other);
      ++stats_.subsumed;
    }
  }
}

bool Preprocessor::strengthenAll() {
  bool changed = false;
  for (int id = 0; id < static_cast<int>(clauses_.size()); ++id) {
    if (!clauses_[static_cast<std::size_t>(id)].alive) continue;
    // Self-subsuming resolution: if C = X ∨ l and D = X' ∨ ~l with
    // X ⊆ X', then resolving on l strengthens D to X'.
    const Clause cLits = clauses_[static_cast<std::size_t>(id)].lits;
    for (const Lit l : cLits) {
      // C without l, still sorted.
      Clause rest;
      rest.reserve(cLits.size() - 1);
      for (const Lit p : cLits) {
        if (p != l) rest.push_back(p);
      }
      const std::uint64_t restSig = signatureOf(rest);
      const std::vector<int> candidates =
          occs_[static_cast<std::size_t>((~l).index())];
      for (const int other : candidates) {
        if (other == id) continue;
        Entry& d = clauses_[static_cast<std::size_t>(other)];
        if (!d.alive || d.lits.size() < cLits.size()) continue;
        if ((restSig & ~d.signature) != 0) continue;
        if (!std::includes(d.lits.begin(), d.lits.end(), rest.begin(),
                           rest.end())) {
          continue;
        }
        // Strengthen D: drop ~l.
        auto& list = occs_[static_cast<std::size_t>((~l).index())];
        list.erase(std::remove(list.begin(), list.end(), other), list.end());
        d.lits.erase(std::remove(d.lits.begin(), d.lits.end(), ~l),
                     d.lits.end());
        d.signature = signatureOf(d.lits);
        ++stats_.strengthened;
        changed = true;
        if (d.lits.size() == 1) {
          const Lit unit = d.lits[0];
          killClause(other);
          if (!enqueueUnit(unit) || !propagateUnits()) return changed;
        }
      }
      if (!clauses_[static_cast<std::size_t>(id)].alive) break;
    }
  }
  return changed;
}

bool Preprocessor::addDerived(Clause c) {
  if (c.empty()) {
    unsat_ = true;
    return false;
  }
  if (c.size() == 1) {
    return enqueueUnit(c[0]);  // propagation happens at the call site
  }
  const int id = static_cast<int>(clauses_.size());
  Entry e;
  e.signature = signatureOf(c);
  e.lits = std::move(c);
  clauses_.push_back(std::move(e));
  attachOccurrences(id);
  return true;
}

bool Preprocessor::tryEliminate(Var v) {
  if (frozen_[static_cast<std::size_t>(v)] != 0 ||
      eliminated_[static_cast<std::size_t>(v)] != 0 ||
      fixed_[static_cast<std::size_t>(v)] != lbool::Undef) {
    return false;
  }
  const auto& pos = occs_[static_cast<std::size_t>(posLit(v).index())];
  const auto& neg = occs_[static_cast<std::size_t>(negLit(v).index())];
  const int total = static_cast<int>(pos.size() + neg.size());
  if (total == 0 || total > opts_.bveMaxOccurrences) return false;

  // Build the non-tautological resolvents.
  std::vector<Clause> resolvents;
  for (const int pi : pos) {
    for (const int ni : neg) {
      Clause r;
      for (const Lit p : clauses_[static_cast<std::size_t>(pi)].lits) {
        if (p.var() != v) r.push_back(p);
      }
      for (const Lit p : clauses_[static_cast<std::size_t>(ni)].lits) {
        if (p.var() != v) r.push_back(p);
      }
      if (!normalizeClause(r)) continue;
      resolvents.push_back(std::move(r));
      if (static_cast<int>(resolvents.size()) >
          total + opts_.bveGrowthLimit) {
        return false;  // elimination would grow the formula
      }
    }
  }

  // Commit: save the occurrences for reconstruction, remove them, add
  // the resolvents.
  Elimination elim;
  elim.var = v;
  std::vector<int> ids(pos.begin(), pos.end());
  ids.insert(ids.end(), neg.begin(), neg.end());
  for (const int id : ids) {
    elim.clauses.push_back(clauses_[static_cast<std::size_t>(id)].lits);
  }
  trail_.push_back(std::move(elim));
  for (const int id : ids) killClause(id);
  eliminated_[static_cast<std::size_t>(v)] = 1;
  ++stats_.varsEliminated;
  for (Clause& r : resolvents) {
    ++stats_.resolventsAdded;
    if (!addDerived(std::move(r))) return true;  // unsat found
  }
  static_cast<void>(propagateUnits());
  return true;
}

CnfFormula Preprocessor::run(const CnfFormula& cnf, std::vector<Var> frozen) {
  num_vars_ = cnf.numVars();
  clauses_.clear();
  occs_.assign(static_cast<std::size_t>(2 * num_vars_), {});
  fixed_.assign(static_cast<std::size_t>(num_vars_), lbool::Undef);
  frozen_.assign(static_cast<std::size_t>(num_vars_), 0);
  eliminated_.assign(static_cast<std::size_t>(num_vars_), 0);
  unitQueue_.clear();
  trail_.clear();
  unsat_ = false;
  for (const Var v : frozen) frozen_[static_cast<std::size_t>(v)] = 1;

  for (const Clause& original : cnf.clauses()) {
    Clause c = original;
    if (!normalizeClause(c)) continue;  // tautology
    if (unsat_) break;
    static_cast<void>(addDerived(std::move(c)));
  }
  if (!unsat_) static_cast<void>(propagateUnits());

  if (!unsat_) {
    for (int round = 0; round < opts_.maxRounds && !unsat_; ++round) {
      bool changed = false;
      if (opts_.subsumption) {
        const std::int64_t before = stats_.subsumed;
        for (int id = 0; id < static_cast<int>(clauses_.size()); ++id) {
          subsumeWith(id);
        }
        changed = changed || stats_.subsumed != before;
      }
      if (opts_.strengthen && !unsat_) {
        changed = strengthenAll() || changed;
      }
      if (opts_.eliminate && !unsat_) {
        for (Var v = 0; v < num_vars_ && !unsat_; ++v) {
          changed = tryEliminate(v) || changed;
        }
      }
      if (!changed) break;
    }
  }

  CnfFormula out(num_vars_);
  if (unsat_) {
    out.addClause(std::initializer_list<Lit>{});
    return out;
  }
  for (Var v = 0; v < num_vars_; ++v) {
    const lbool val = fixed_[static_cast<std::size_t>(v)];
    if (val == lbool::True) {
      out.addClause({posLit(v)});
    } else if (val == lbool::False) {
      out.addClause({negLit(v)});
    }
  }
  for (const Entry& e : clauses_) {
    if (e.alive) out.addClause(e.lits);
  }
  return out;
}

Assignment Preprocessor::reconstruct(const Assignment& model) const {
  Assignment out(static_cast<std::size_t>(num_vars_), lbool::Undef);
  for (std::size_t v = 0; v < out.size() && v < model.size(); ++v) {
    out[v] = model[v];
  }
  // Top-level units override (they are also in the simplified formula,
  // but make reconstruction robust to partial models).
  for (Var v = 0; v < num_vars_; ++v) {
    if (fixed_[static_cast<std::size_t>(v)] != lbool::Undef) {
      out[static_cast<std::size_t>(v)] = fixed_[static_cast<std::size_t>(v)];
    }
  }
  // Unconstrained survivors default to false so the elimination stack
  // reads complete values.
  for (std::size_t v = 0; v < out.size(); ++v) {
    if (out[v] == lbool::Undef && eliminated_[v] == 0) out[v] = lbool::False;
  }
  // Undo eliminations in reverse: pick the polarity of the eliminated
  // variable that satisfies every clause it occurred in.
  for (auto it = trail_.rbegin(); it != trail_.rend(); ++it) {
    const Var v = it->var;
    bool needTrue = false;
    for (const Clause& c : it->clauses) {
      bool satisfiedWithoutV = false;
      bool containsPos = false;
      for (const Lit p : c) {
        if (p.var() == v) {
          containsPos = containsPos || p.positive();
          continue;
        }
        const lbool val = out[static_cast<std::size_t>(p.var())];
        if (applySign(val, p) == lbool::True) {
          satisfiedWithoutV = true;
          break;
        }
      }
      if (!satisfiedWithoutV && containsPos) {
        needTrue = true;
        break;
      }
    }
    out[static_cast<std::size_t>(v)] = needTrue ? lbool::True : lbool::False;
  }
  return out;
}

std::pair<WcnfFormula, Preprocessor> preprocessHard(
    const WcnfFormula& wcnf, const SimpOptions& options) {
  CnfFormula hard(wcnf.numVars());
  for (const Clause& c : wcnf.hard()) hard.addClause(c);
  std::vector<Var> frozen;
  std::vector<char> seen(static_cast<std::size_t>(wcnf.numVars()), 0);
  for (const SoftClause& sc : wcnf.soft()) {
    for (const Lit p : sc.lits) {
      if (seen[static_cast<std::size_t>(p.var())] == 0) {
        seen[static_cast<std::size_t>(p.var())] = 1;
        frozen.push_back(p.var());
      }
    }
  }
  Preprocessor pre(options);
  const CnfFormula simplified = pre.run(hard, std::move(frozen));
  WcnfFormula out(wcnf.numVars());
  for (const Clause& c : simplified.clauses()) out.addHard(c);
  for (const SoftClause& sc : wcnf.soft()) out.addSoft(sc.lits, sc.weight);
  return {std::move(out), std::move(pre)};
}

}  // namespace msu
