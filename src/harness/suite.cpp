#include "harness/suite.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "gen/bmc.h"
#include "gen/debug.h"
#include "gen/graphs.h"
#include "gen/miter.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "gen/arith.h"
#include "gen/tpg.h"

namespace msu {
namespace {

std::string numbered(const std::string& base, int i) {
  std::string n = std::to_string(i);
  if (n.size() < 2) n = "0" + n;
  return base + "-" + n;
}

int scaled(double base, double scale) {
  return std::max(1, static_cast<int>(std::lround(base * scale)));
}

}  // namespace

std::vector<Instance> buildMixedSuite(const SuiteParams& params) {
  std::vector<Instance> suite;
  const double s = params.sizeScale;
  const std::uint64_t seed = params.seed;

  // Equivalence-checking miters: random circuit vs. its rewrite. Sized
  // so that search-without-learning (the B&B baseline) degrades the way
  // the paper reports for industrial instances.
  for (int i = 0; i < params.perFamily; ++i) {
    RandomCircuitParams cp;
    cp.numInputs = 10 + i;
    cp.numGates = scaled(240.0 + 180.0 * i, s);
    cp.numOutputs = 2 + (i % 3);
    cp.seed = seed + static_cast<std::uint64_t>(i);
    CnfFormula cnf = equivalenceInstance(cp, seed + 1000 + i);
    suite.push_back(Instance{numbered("eq-miter", i), "equivalence",
                             WcnfFormula::allSoft(cnf)});
  }

  // BMC unrollings of the counter design (register width grows with the
  // depth so the target stays unreachable).
  for (int i = 0; i < params.perFamily; ++i) {
    BmcCounterParams bp;
    bp.steps = scaled(24.0 + 10.0 * i, s);
    bp.bits = 6;
    while ((std::int64_t{1} << bp.bits) <= bp.steps + 1) ++bp.bits;
    CnfFormula cnf = bmcCounterInstance(bp);
    suite.push_back(
        Instance{numbered("bmc-counter", i), "bmc", WcnfFormula::allSoft(cnf)});
  }

  // Design debugging (plain MaxSAT flavour for the mixed suite). Higher
  // indices inject several errors, so optima grow and the cardinality
  // machinery of the core-guided solvers is genuinely exercised.
  for (int i = 0; i < params.perFamily; ++i) {
    DebugParams dp;
    dp.circuit.numInputs = 7 + (i % 4);
    dp.circuit.numGates = scaled(240.0 + 170.0 * i, s);
    dp.circuit.numOutputs = 3;
    dp.circuit.seed = seed + 2000 + static_cast<std::uint64_t>(i);
    dp.numVectors = 3 + i / 2;
    dp.numErrors = 1 + i / 3;
    dp.seed = seed + 3000 + static_cast<std::uint64_t>(i);
    DebugInstance di = designDebugInstance(dp, /*partial=*/false);
    suite.push_back(
        Instance{numbered("debug", i), "debug", std::move(di.wcnf)});
  }

  // Test-pattern generation: redundant (untestable) stuck-at faults.
  for (int i = 0; i < params.perFamily; ++i) {
    RandomCircuitParams cp;
    cp.numInputs = 9 + i;
    cp.numGates = scaled(440.0 + 320.0 * i, s);
    cp.numOutputs = 2 + (i % 2);
    cp.seed = seed + 7000 + static_cast<std::uint64_t>(i);
    CnfFormula cnf = untestableFaultInstance(cp, seed + 8000 + i);
    suite.push_back(
        Instance{numbered("tpg", i), "tpg", WcnfFormula::allSoft(cnf)});
  }

  // Arithmetic equivalence checking: ripple-carry vs Kogge-Stone adder
  // miters and a multiplier commutativity miter — deterministic, classic
  // EqCheck workloads.
  for (int i = 0; i < std::max(params.perFamily / 2, 2); ++i) {
    const int bits = scaled(8.0 + 6.0 * i, s);
    suite.push_back(Instance{numbered("adder-rc-ks", i), "arith",
                             WcnfFormula::allSoft(
                                 adderEquivalenceMiter(bits))});
  }
  suite.push_back(Instance{"mult-comm-3", "arith",
                           WcnfFormula::allSoft(
                               multiplierCommutativityMiter(3))});

  // Over-constrained random 3-SAT: a *control* family (not in the
  // paper's industrial suite) documenting the known crossover — B&B
  // beats core-guided search on dense random MaxSAT.
  for (int i = 0; i < std::max(params.perFamily / 2, 2); ++i) {
    const int n = scaled(50.0 + 15.0 * i, s);
    CnfFormula cnf =
        randomUnsat3Sat(n, 5.2 + 0.3 * (i % 4), seed + 4000 + i);
    suite.push_back(
        Instance{numbered("rnd3sat", i), "random", WcnfFormula::allSoft(cnf)});
  }

  // Pigeonhole controls (hard for everyone as holes grow).
  for (int i = 0; i < std::min(std::max(params.perFamily / 2, 2), 6); ++i) {
    const int holes = 4 + i;
    CnfFormula cnf = pigeonhole(holes + 1, holes);
    suite.push_back(
        Instance{numbered("php", i), "php", WcnfFormula::allSoft(cnf)});
  }

  return suite;
}

std::vector<Instance> buildDebugSuite(const SuiteParams& params) {
  std::vector<Instance> suite;
  const double s = params.sizeScale;
  const int count = std::max(params.perFamily, 8);
  for (int i = 0; i < count; ++i) {
    DebugParams dp;
    dp.circuit.numInputs = 6 + (i % 5);
    dp.circuit.numGates = scaled(160.0 + 110.0 * i, s);
    dp.circuit.numOutputs = 2 + (i % 3);
    dp.circuit.seed = params.seed + 5000 + static_cast<std::uint64_t>(i);
    dp.numVectors = 3 + (i % 4);
    dp.seed = params.seed + 6000 + static_cast<std::uint64_t>(i);
    DebugInstance di = designDebugInstance(dp, /*partial=*/false);
    suite.push_back(
        Instance{numbered("debug", i), "debug", std::move(di.wcnf)});
  }
  return suite;
}

std::vector<Instance> buildWeightedSuite(const SuiteParams& params) {
  std::vector<Instance> suite;
  const double sc = params.sizeScale;
  std::uint64_t seed = params.seed + 90000;
  for (int i = 0; i < params.perFamily; ++i) {
    TimetableParams tp;
    tp.numEvents = scaled(14.0 + 2.0 * i, sc);
    tp.numSlots = 4;
    tp.conflictProbability = 0.30;
    tp.preferencesPerEvent = 3;
    tp.maxPreferenceWeight = 8;
    tp.seed = seed++;
    suite.push_back({"timetable-" + std::to_string(i), "timetable",
                     timetablingInstance(tp)});
  }
  for (int i = 0; i < params.perFamily; ++i) {
    const Graph g = randomGraph(scaled(13.0 + i, sc), 0.45, seed++);
    std::vector<Weight> weights;
    std::mt19937_64 wrng(seed++);
    weights.reserve(g.edges.size());
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      weights.push_back(1 + static_cast<Weight>(wrng() % 9));
    }
    suite.push_back({"wmaxcut-" + std::to_string(i), "wmaxcut",
                     maxCutInstance(g, weights)});
  }
  for (int i = 0; i < params.perFamily; ++i) {
    const Graph g =
        ringWithChords(scaled(12.0 + 2.0 * i, sc), 8 + i, seed++);
    suite.push_back(
        {"coloring-" + std::to_string(i), "coloring", coloringInstance(g, 3)});
  }
  return suite;
}

}  // namespace msu
