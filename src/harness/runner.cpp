#include "harness/runner.h"

#include <chrono>
#include <iostream>
#include <map>

#include "harness/factory.h"

namespace msu {

std::vector<RunRecord> runSolver(const std::string& solverName,
                                 std::span<const Instance> suite,
                                 const RunConfig& config) {
  std::vector<RunRecord> records;
  records.reserve(suite.size());
  for (const Instance& inst : suite) {
    MaxSatOptions opts;
    opts.budget = Budget::wallClock(config.timeoutSeconds);
    std::unique_ptr<MaxSatSolver> solver = makeSolver(solverName, opts);
    if (!solver) {
      std::cerr << "unknown solver name: " << solverName << '\n';
      break;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const MaxSatResult res = solver->solve(inst.wcnf);
    const auto t1 = std::chrono::steady_clock::now();

    RunRecord rec;
    rec.solver = solverName;
    rec.instance = inst.name;
    rec.family = inst.family;
    rec.status = res.status;
    rec.cost = res.cost;
    rec.seconds = std::chrono::duration<double>(t1 - t0).count();
    rec.aborted = res.status == MaxSatStatus::Unknown;
    if (config.verbose) {
      std::cout << solverName << ' ' << inst.name << ' '
                << toString(rec.status) << " cost=" << rec.cost
                << " t=" << rec.seconds << "s\n";
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<RunRecord> runMatrix(std::span<const std::string> solverNames,
                                 std::span<const Instance> suite,
                                 const RunConfig& config) {
  std::vector<RunRecord> all;
  for (const std::string& name : solverNames) {
    std::vector<RunRecord> rs = runSolver(name, suite, config);
    all.insert(all.end(), rs.begin(), rs.end());
  }
  return all;
}

int crossCheckOptima(std::span<const RunRecord> records,
                     std::ostream& diagnostics) {
  std::map<std::string, std::pair<std::string, Weight>> firstOptimum;
  int disagreements = 0;
  for (const RunRecord& r : records) {
    if (r.status != MaxSatStatus::Optimum) continue;
    auto [it, inserted] =
        firstOptimum.try_emplace(r.instance, r.solver, r.cost);
    if (!inserted && it->second.second != r.cost) {
      ++disagreements;
      diagnostics << "OPTIMUM DISAGREEMENT on " << r.instance << ": "
                  << it->second.first << " says " << it->second.second
                  << ", " << r.solver << " says " << r.cost << '\n';
    }
  }
  return disagreements;
}

}  // namespace msu
