/// \file suite.h
/// \brief Builds the benchmark suites that substitute for the paper's
///        691 industrial unsatisfiable instances (see DESIGN.md §4):
///        equivalence-checking miters, BMC unrollings, design-debugging
///        instances, over-constrained random 3-SAT and pigeonhole
///        controls. Every instance is an unsatisfiable plain-MaxSAT or
///        partial-MaxSAT WCNF.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnf/wcnf.h"

namespace msu {

/// One benchmark instance.
struct Instance {
  std::string name;    ///< unique, e.g. "eq-miter-03"
  std::string family;  ///< "equivalence", "bmc", "debug", "random", "php"
  WcnfFormula wcnf;
};

/// Scaling knobs for the generated suites.
struct SuiteParams {
  /// Multiplies instance sizes (1 = CI-friendly defaults).
  double sizeScale = 1.0;
  /// Instances per family.
  int perFamily = 8;
  std::uint64_t seed = 20080310;  // DATE'08 week, for flavour
};

/// The mixed industrial-style suite used by Table 1 and Figures 1-3.
[[nodiscard]] std::vector<Instance> buildMixedSuite(const SuiteParams& params);

/// The design-debugging suite used by Table 2 (plain MaxSAT, as in the
/// paper's evaluation of [24]-style instances).
[[nodiscard]] std::vector<Instance> buildDebugSuite(const SuiteParams& params);

/// Weighted partial-MaxSAT suite (timetabling, weighted max-cut, graph
/// coloring) exercising the weighted-native engines — beyond the paper's
/// unweighted evaluation, used by `bench/ablation_weighted`.
[[nodiscard]] std::vector<Instance> buildWeightedSuite(
    const SuiteParams& params);

}  // namespace msu
