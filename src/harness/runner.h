/// \file runner.h
/// \brief Runs solver/instance matrices with per-instance budgets and
///        collects the records behind the paper's tables and scatter
///        plots ("aborted instances" accounting).

#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/maxsat.h"
#include "harness/suite.h"

namespace msu {

/// One (solver, instance) measurement.
struct RunRecord {
  std::string solver;
  std::string instance;
  std::string family;
  MaxSatStatus status = MaxSatStatus::Unknown;
  Weight cost = 0;       ///< valid when status == Optimum
  double seconds = 0.0;  ///< wall-clock time of the solve call
  bool aborted = false;  ///< budget exhausted before an answer
};

/// Per-run configuration.
struct RunConfig {
  double timeoutSeconds = 1.0;  ///< per-instance budget (the paper: 1000 s)
  bool verbose = false;         ///< stream one line per run to stdout
};

/// Runs one engine (constructed fresh per instance via the factory name)
/// over the suite.
[[nodiscard]] std::vector<RunRecord> runSolver(
    const std::string& solverName, std::span<const Instance> suite,
    const RunConfig& config);

/// Runs several engines over the suite, concatenating records.
[[nodiscard]] std::vector<RunRecord> runMatrix(
    std::span<const std::string> solverNames, std::span<const Instance> suite,
    const RunConfig& config);

/// Cross-checks that every pair of Optimum records for the same instance
/// agrees on the cost; returns the number of disagreements (also writes
/// a diagnostic line per disagreement to `diagnostics`).
int crossCheckOptima(std::span<const RunRecord> records,
                     std::ostream& diagnostics);

}  // namespace msu
