/// \file factory.h
/// \brief Name-based construction of every MaxSAT engine in the library,
///        used by the CLI example and the experiment harness. Names map
///        to the columns of the paper's tables: "maxsatz" (our B&B),
///        "pbo" (the PBO formulation), "msu4-v1", "msu4-v2".

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/maxsat.h"

namespace msu {

/// All engine names accepted by makeSolver().
[[nodiscard]] std::vector<std::string> solverNames();

/// Creates an engine by name; nullptr for unknown names.
///
/// Names: "msu4-v1", "msu4-v2", "msu4-seq", "msu4-tot", "msu3", "msu1",
/// "linear", "binary", "pbo", "pbo-adder", "maxsatz", plus the parallel
/// portfolio as "portfolio" (default thread count) or "portfolioN"
/// (e.g. "portfolio4": N racing workers with clause sharing).
/// `options.budget` applies to every engine; the cardinality-encoding
/// option is overridden by names that pin one (msu4-v1/v2/seq/tot).
[[nodiscard]] std::unique_ptr<MaxSatSolver> makeSolver(
    const std::string& name, const MaxSatOptions& options = {});

}  // namespace msu
