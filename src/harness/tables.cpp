#include "harness/tables.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>

namespace msu {
namespace {

struct SolverAgg {
  int total = 0;
  int aborted = 0;
  int solved = 0;
  double totalSeconds = 0.0;
};

std::map<std::string, SolverAgg> aggregate(
    std::span<const RunRecord> records) {
  std::map<std::string, SolverAgg> by;
  for (const RunRecord& r : records) {
    SolverAgg& a = by[r.solver];
    ++a.total;
    a.totalSeconds += r.seconds;
    if (r.aborted) {
      ++a.aborted;
    } else {
      ++a.solved;
    }
  }
  return by;
}

}  // namespace

void printAbortedTable(std::ostream& out, std::span<const RunRecord> records,
                       std::span<const std::string> solverOrder,
                       const std::string& title) {
  const std::map<std::string, SolverAgg> by = aggregate(records);
  out << title << '\n';
  out << std::left << std::setw(14) << "solver" << std::right << std::setw(8)
      << "total" << std::setw(10) << "aborted" << std::setw(9) << "solved"
      << std::setw(12) << "mean t[s]" << '\n';
  for (const std::string& name : solverOrder) {
    const auto it = by.find(name);
    if (it == by.end()) continue;
    const SolverAgg& a = it->second;
    out << std::left << std::setw(14) << name << std::right << std::setw(8)
        << a.total << std::setw(10) << a.aborted << std::setw(9) << a.solved
        << std::setw(12) << std::fixed << std::setprecision(3)
        << (a.total > 0 ? a.totalSeconds / a.total : 0.0) << '\n';
  }
}

void printFamilyBreakdown(std::ostream& out,
                          std::span<const RunRecord> records,
                          std::span<const std::string> solverOrder) {
  std::set<std::string> families;
  for (const RunRecord& r : records) families.insert(r.family);

  out << "\nAborted instances by family:\n";
  out << std::left << std::setw(14) << "solver";
  for (const std::string& f : families) {
    out << std::right << std::setw(14) << f;
  }
  out << '\n';
  for (const std::string& name : solverOrder) {
    out << std::left << std::setw(14) << name;
    for (const std::string& f : families) {
      int aborted = 0;
      int total = 0;
      for (const RunRecord& r : records) {
        if (r.solver != name || r.family != f) continue;
        ++total;
        if (r.aborted) ++aborted;
      }
      std::string cell =
          std::to_string(aborted) + "/" + std::to_string(total);
      out << std::right << std::setw(14) << cell;
    }
    out << '\n';
  }
}

std::vector<ScatterPoint> makeScatter(std::span<const RunRecord> records,
                                      const std::string& xSolver,
                                      const std::string& ySolver) {
  std::map<std::string, const RunRecord*> xs;
  std::map<std::string, const RunRecord*> ys;
  for (const RunRecord& r : records) {
    if (r.solver == xSolver) xs[r.instance] = &r;
    if (r.solver == ySolver) ys[r.instance] = &r;
  }
  std::vector<ScatterPoint> points;
  for (const auto& [name, xr] : xs) {
    const auto it = ys.find(name);
    if (it == ys.end()) continue;
    ScatterPoint p;
    p.instance = name;
    p.family = xr->family;
    p.xSeconds = xr->seconds;
    p.ySeconds = it->second->seconds;
    p.xAborted = xr->aborted;
    p.yAborted = it->second->aborted;
    points.push_back(std::move(p));
  }
  return points;
}

void writeScatterCsv(std::ostream& out, std::span<const ScatterPoint> points,
                     const std::string& xName, const std::string& yName) {
  out << "instance,family," << xName << "_seconds," << yName << "_seconds,"
      << xName << "_aborted," << yName << "_aborted\n";
  for (const ScatterPoint& p : points) {
    out << p.instance << ',' << p.family << ',' << p.xSeconds << ','
        << p.ySeconds << ',' << (p.xAborted ? 1 : 0) << ','
        << (p.yAborted ? 1 : 0) << '\n';
  }
}

void printScatterSummary(std::ostream& out,
                         std::span<const ScatterPoint> points,
                         const std::string& xName, const std::string& yName) {
  int xWins = 0;
  int yWins = 0;
  int xAborted = 0;
  int yAborted = 0;
  int bothSolved = 0;
  double logRatioSum = 0.0;
  constexpr double kFloor = 1e-4;  // clamp for the geometric mean
  for (const ScatterPoint& p : points) {
    if (p.xAborted) ++xAborted;
    if (p.yAborted) ++yAborted;
    if (p.xAborted && !p.yAborted) ++yWins;
    if (!p.xAborted && p.yAborted) ++xWins;
    if (p.xAborted || p.yAborted) continue;
    ++bothSolved;
    if (p.xSeconds < p.ySeconds) {
      ++xWins;
    } else if (p.ySeconds < p.xSeconds) {
      ++yWins;
    }
    logRatioSum += std::log(std::max(p.ySeconds, kFloor) /
                            std::max(p.xSeconds, kFloor));
  }
  out << "scatter " << yName << " (y) vs " << xName << " (x): n="
      << points.size() << ", both-solved=" << bothSolved << '\n';
  out << "  " << xName << ": aborted=" << xAborted << ", faster-or-solved="
      << xWins << '\n';
  out << "  " << yName << ": aborted=" << yAborted << ", faster-or-solved="
      << yWins << '\n';
  if (bothSolved > 0) {
    out << "  geometric mean (" << yName << " time / " << xName
        << " time) over both-solved = " << std::fixed << std::setprecision(2)
        << std::exp(logRatioSum / bothSolved) << "x\n";
  }
}

namespace {

// One shared row formatter so every caller's labels and values stay in
// the same columns — the whole point of the unified block.
void printStatRow(std::ostream& out, const std::string& linePrefix,
                  const char* label, std::int64_t value) {
  out << linePrefix << "  " << std::left << std::setw(24) << label
      << std::right << std::setw(14) << value << '\n';
}

// Deliberately hand-formatted rather than driven by
// SolverStats::forEachField: the table groups and indents related rows
// (binary/long under propagations) and uses human labels. Shared by
// printSatStats and printRunStats so the label column stays aligned
// whichever entry point a driver uses.
void printSatStatsRows(std::ostream& out, const SolverStats& stats,
                       const std::string& linePrefix) {
  const auto row = [&out, &linePrefix](const char* label,
                                       std::int64_t value) {
    printStatRow(out, linePrefix, label, value);
  };
  row("solves", stats.solves);
  row("  reused trail lits", stats.reused_trail_lits);
  row("decisions", stats.decisions);
  row("conflicts", stats.conflicts);
  row("restarts", stats.restarts);
  row("  mode (0L/1G/2F/3S)", stats.restart_mode);
  row("  blocked", stats.restarts_blocked);
  row("  mode switches", stats.mode_switches);
  row("propagations", stats.propagations);
  row("  binary", stats.binary_propagations);
  row("  long", stats.long_propagations);
  row("blocker hits", stats.blocker_hits);
  row("watch bytes visited", stats.watch_bytes_visited);
  row("learnt clauses", stats.learnt_clauses);
  row("learnt literals", stats.learnt_literals);
  row("minimized literals", stats.minimized_literals);
  row("removed clauses", stats.removed_clauses);
  row("promoted clauses", stats.promoted_clauses);
  row("demoted clauses", stats.demoted_clauses);
  row("tier core", stats.tier_core);
  row("tier tier2", stats.tier_tier2);
  row("tier local", stats.tier_local);
  row("gc runs", stats.gc_runs);
  row("retired scopes", stats.retired_scopes);
  row("retired clauses", stats.retired_clauses);
  row("reclaimed bytes", stats.reclaimed_bytes);
  row("recycled vars", stats.recycled_vars);
  row("inproc passes", stats.inproc_passes);
  row("  satisfied removed", stats.inproc_removed_sat);
  row("  subsumed", stats.inproc_subsumed);
  row("  strengthened", stats.inproc_strengthened);
  row("  vivified", stats.inproc_vivified);
  row("  literals removed", stats.inproc_lits_removed);
  row("  probe propagations", stats.inproc_props);
  row("  bve eliminated", stats.inproc_bve_eliminated);
  row("  bve resolvents", stats.inproc_bve_resolvents);
  row("  bve restored", stats.inproc_bve_restored);
  row("  scc substituted", stats.inproc_scc_vars);
  row("  scc rewritten", stats.inproc_scc_rewritten);
  row("  probes", stats.inproc_probe_probes);
  row("  failed literals", stats.inproc_probe_failed);
  row("  hyper-binaries", stats.inproc_probe_hbr);
  row("shared exported", stats.shared_exported);
  row("  export drops (exchange)", stats.shared_export_drops);
  row("shared imported", stats.shared_imported);
  row("  dropped as satisfied", stats.shared_import_drops);
  row("shared import drains", stats.shared_import_drains);
  row("  publications scanned", stats.shared_import_scanned);
}

}  // namespace

void printSatStats(std::ostream& out, const SolverStats& stats,
                   const std::string& title,
                   const std::string& linePrefix) {
  out << linePrefix << title << '\n';
  printSatStatsRows(out, stats, linePrefix);
}

void printRunStats(std::ostream& out, const EngineRunCounters& engine,
                   const SolverStats& stats, const std::string& title,
                   const std::string& linePrefix) {
  out << linePrefix << title << '\n';
  printStatRow(out, linePrefix, "iterations", engine.iterations);
  printStatRow(out, linePrefix, "cores found", engine.cores);
  printStatRow(out, linePrefix, "sat calls", engine.satCalls);
  printSatStatsRows(out, stats, linePrefix);
}

void exportStatsToMetrics(obs::MetricsRegistry& registry,
                          const SolverStats& stats) {
  // The gauge-natured fields of SolverStats (see stats.h): everything
  // else is a monotone tally of work performed and maps to a counter.
  const auto isGauge = [](const std::string& name) {
    return name == "tier_core" || name == "tier_tier2" ||
           name == "tier_local" || name == "restart_mode" ||
           name == "mem_bytes" || name == "mem_arena_bytes" ||
           name == "mem_watch_bytes" || name == "mem_external_bytes";
  };
  stats.forEachField([&](const char* name, std::int64_t value) {
    const std::string n(name);
    if (isGauge(n)) {
      registry.gauge("msu_solver_" + n).set(value);
    } else {
      registry.counter("msu_solver_" + n + "_total").add(value);
    }
  });
}

}  // namespace msu
