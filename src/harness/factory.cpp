#include "harness/factory.h"

#include <cstdlib>

#include "bnb/bnb_solver.h"
#include "core/binary_search.h"
#include "core/bmo.h"
#include "core/linear_search.h"
#include "core/msu1.h"
#include "core/msu3.h"
#include "core/msu4.h"
#include "core/oll.h"
#include "core/wlinear.h"
#include "core/wmsu1.h"
#include "par/cube.h"
#include "par/portfolio.h"
#include "pbo/maxsat_pbo.h"

namespace msu {

std::vector<std::string> solverNames() {
  return {"msu4-v1", "msu4-v2", "msu4-seq",  "msu4-tot", "msu4-cnet", "msu3",
          "msu1",    "wmsu1",   "oll",       "bmo",       "linear",   "wlinear",
          "wlinear-adder",      "binary",    "pbo",      "pbo-adder",
          "maxsatz", "portfolio", "portfolio4", "cubes",  "cubes4"};
}

std::unique_ptr<MaxSatSolver> makeSolver(const std::string& name,
                                         const MaxSatOptions& options) {
  MaxSatOptions o = options;
  if (name == "msu4-v1") {
    o.encoding = CardEncoding::Bdd;
    return std::make_unique<Msu4Solver>(o);
  }
  if (name == "msu4-v2") {
    o.encoding = CardEncoding::Sorter;
    return std::make_unique<Msu4Solver>(o);
  }
  if (name == "msu4-seq") {
    o.encoding = CardEncoding::Sequential;
    return std::make_unique<Msu4Solver>(o);
  }
  if (name == "msu4-tot") {
    o.encoding = CardEncoding::Totalizer;
    return std::make_unique<Msu4Solver>(o);
  }
  if (name == "msu4-cnet") {
    o.encoding = CardEncoding::CardNet;
    return std::make_unique<Msu4Solver>(o);
  }
  if (name == "msu3") {
    o.encoding = CardEncoding::Totalizer;
    return std::make_unique<Msu3Solver>(o);
  }
  if (name == "msu1") {
    return std::make_unique<Msu1Solver>(o);
  }
  if (name == "wmsu1") {
    return std::make_unique<Wmsu1Solver>(o);
  }
  if (name == "oll") {
    return std::make_unique<OllSolver>(o);
  }
  if (name == "bmo") {
    return std::make_unique<BmoSolver>(o);
  }
  if (name == "linear") {
    return std::make_unique<LinearSearchSolver>(o);
  }
  if (name == "wlinear" || name == "wlinear-adder") {
    const PbEncoding pe =
        name == "wlinear" ? PbEncoding::Bdd : PbEncoding::Adder;
    return std::make_unique<WeightedLinearSolver>(o, pe);
  }
  if (name == "binary") {
    return std::make_unique<BinarySearchSolver>(o);
  }
  if (name == "pbo" || name == "pbo-adder") {
    PboMaxSatOptions po;
    po.budget = options.budget;
    po.sat = options.sat;
    po.encoding = name == "pbo" ? PbEncoding::Bdd : PbEncoding::Adder;
    return std::make_unique<PboMaxSatSolver>(po);
  }
  if (name == "maxsatz") {
    BnbOptions bo;
    bo.budget = options.budget;
    return std::make_unique<BnbSolver>(bo);
  }
  if (name.rfind("portfolio", 0) == 0) {
    const std::string suffix = name.substr(9);
    if (!suffix.empty() &&
        (suffix.find_first_not_of("0123456789") != std::string::npos ||
         suffix.size() > 3)) {
      return nullptr;  // strict match: "portfolio" or "portfolioN"
    }
    PortfolioOptions po;
    po.base = options;
    po.threads = suffix.empty() ? 4 : std::atoi(suffix.c_str());
    if (po.threads < 1) return nullptr;
    return std::make_unique<PortfolioSolver>(po);
  }
  if (name.rfind("cubes", 0) == 0) {
    const std::string suffix = name.substr(5);
    if (!suffix.empty() &&
        (suffix.find_first_not_of("0123456789") != std::string::npos ||
         suffix.size() > 3)) {
      return nullptr;  // strict match: "cubes" or "cubesN"
    }
    CubeOptions co;
    co.base = options;
    co.threads = suffix.empty() ? 4 : std::atoi(suffix.c_str());
    if (co.threads < 1) return nullptr;
    return std::make_unique<CubeSolver>(co);
  }
  return nullptr;
}

}  // namespace msu
