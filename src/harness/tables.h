/// \file tables.h
/// \brief Formats run records into the paper's artifacts: the
///        aborted-instances tables (Tables 1 & 2) and the scatter-plot
///        series (Figures 1-3, emitted as CSV plus a textual summary).

#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "obs/metrics.h"
#include "sat/stats.h"

namespace msu {

/// Prints a Table-1-style summary: per solver, the number of instances
/// aborted within the budget (plus solved counts and mean runtime).
void printAbortedTable(std::ostream& out, std::span<const RunRecord> records,
                       std::span<const std::string> solverOrder,
                       const std::string& title);

/// Per-family breakdown of aborted counts (extension of Table 1).
void printFamilyBreakdown(std::ostream& out,
                          std::span<const RunRecord> records,
                          std::span<const std::string> solverOrder);

/// One scatter point: runtimes of two solvers on the same instance.
struct ScatterPoint {
  std::string instance;
  std::string family;
  double xSeconds = 0.0;  ///< solver on the x axis (msu4-v2 in the paper)
  double ySeconds = 0.0;
  bool xAborted = false;
  bool yAborted = false;
};

/// Pairs up records of two solvers by instance.
[[nodiscard]] std::vector<ScatterPoint> makeScatter(
    std::span<const RunRecord> records, const std::string& xSolver,
    const std::string& ySolver);

/// Emits "instance,family,x_seconds,y_seconds,x_aborted,y_aborted" CSV.
void writeScatterCsv(std::ostream& out, std::span<const ScatterPoint> points,
                     const std::string& xName, const std::string& yName);

/// Prints a textual summary of a scatter: win counts, aborted counts and
/// the geometric-mean runtime ratio over commonly-solved instances.
void printScatterSummary(std::ostream& out,
                         std::span<const ScatterPoint> points,
                         const std::string& xName, const std::string& yName);

/// Prints the CDCL substrate counters (search totals including the
/// warm-start trail reuse and restart-trajectory rows, the propagation
/// breakdown from the flat-watch/binary-fast-path core, the learnt
/// database's tier occupancy, the encoding-lifecycle accounting —
/// retired scopes/clauses, reclaimed bytes, recycled variables — and
/// the inprocessing accounting) as a labelled two-column table. Every
/// line starts with `linePrefix` (e.g. "c " to keep DIMACS-style
/// solver output machine-skippable).
void printSatStats(std::ostream& out, const SolverStats& stats,
                   const std::string& title,
                   const std::string& linePrefix = "");

/// Engine-level counters of one MaxSAT run (the driver-visible slice of
/// MaxSatResult), so drivers need not depend on core/maxsat.h here.
struct EngineRunCounters {
  std::int64_t iterations = 0;  ///< main-loop iterations
  std::int64_t cores = 0;       ///< unsatisfiable cores extracted
  std::int64_t satCalls = 0;    ///< SAT oracle invocations
};

/// Prints engine-level and CDCL counters as ONE aligned block (shared
/// label column), replacing the historical split into an ad-hoc engine
/// section plus a separate substrate table: engine rows first, then
/// every printSatStats row, all under a single title.
void printRunStats(std::ostream& out, const EngineRunCounters& engine,
                   const SolverStats& stats, const std::string& title,
                   const std::string& linePrefix = "");

/// Mirrors a SolverStats block into `registry` as `msu_solver_<field>`
/// metrics — driven by the same MSU_SOLVER_STATS_FIELDS X-macro that
/// printSatStats renders, so the two dump paths can never diverge.
/// Search-work fields accumulate into `_total` counters; the gauge
/// fields (`tier_*` occupancy, `restart_mode`, `mem_bytes`) overwrite
/// gauges instead. Call once per finished run (the SolveService does,
/// per job).
void exportStatsToMetrics(obs::MetricsRegistry& registry,
                          const SolverStats& stats);

}  // namespace msu
