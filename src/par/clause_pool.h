/// \file clause_pool.h
/// \brief The shared learnt-clause exchange of the parallel portfolio:
///        per-worker lock-free SPMC segments with one export/import
///        endpoint per worker.
///
/// ## Why sharing across *heterogeneous* engines is sound
///
/// Every worker solves the same MaxSAT instance, but each engine mixes
/// the instance's hard clauses with clauses of its own: selector-
/// augmented soft clauses `(C_i ∨ s_i)`, cardinality/PB encodings over
/// the selectors, bound restrictions, at-least-one-blocking clauses.
/// Those additions are *not* consequences of the instance — importing
/// them (or anything derived from them) into a worker at a different
/// search state could cut optimal models and change the answer.
///
/// The export filter (Solver::maybeExportLearnt) admits only clauses
/// whose variables all lie in the shared prefix `[0, numVars)` of the
/// original formula. That is sufficient because the engine layer keeps
/// every addition in one of two shapes:
///
///  * a *conservative extension*: selector-augmented softs (the
///    selector appears only positively, so setting it true satisfies
///    the clause under any assignment of the originals) and encoding
///    definitions over fresh auxiliaries — any model of the hard
///    clauses extends to a model of these; or
///  * a *guarded restriction*: everything that genuinely cuts models
///    (bound units, per-bound structures) lives in an encoding scope,
///    so each clause carries a `~act` guard whose positive literal
///    appears in no clause whatsoever — resolution can never eliminate
///    the guard, and every learnt descendant keeps a literal above the
///    shared prefix. (IncrementalAtMost routes even the incremental
///    totalizer's monotone bound units through a permanent scope for
///    exactly this reason; clauses touching activator-tagged scope
///    variables are thus never exported, which also keeps sharing
///    sound under physical scope retirement.)
///
/// Hence any learnt clause over original variables only is derivable
/// from the hard clauses plus conservative extensions alone, and by
/// conservativity is a consequence of the hard clauses — attachable by
/// every other worker, whatever its engine, bound state or retirement
/// history. The portfolio only hands endpoints to engines that obey
/// this discipline (see PortfolioOptions::engines).
///
/// ## Mechanics (sharded, lock-free)
///
/// The pool keeps one *segment* per worker: an epoch-chunked append-only
/// arena that only its owning worker writes. Publication is a single
/// release store of the chunk's record count (readers acquire it), and
/// chunk growth is a release store of the `next` pointer — the export
/// hot path takes no lock and allocates only at chunk boundaries.
/// Segments never recycle storage, so readers can hold spans into them
/// without coordination; a per-segment chunk ceiling bounds memory, and
/// publications beyond it are dropped and counted (the exporter sees
/// the drop and accounts it in SolverStats::shared_export_drops).
///
/// Each endpoint keeps one read cursor per *foreign* segment, so a
/// worker imports every clause published by others at most once and
/// never re-imports its own exports. Deduplication is per-endpoint: an
/// endpoint remembers the fingerprints of every clause it has published
/// or delivered and skips duplicates on both paths. (The old global
/// first-publisher-wins dedup needed the lock; the per-endpoint set
/// preserves the invariant that matters — no worker ever attaches the
/// same clause twice — without any cross-thread state.) Duplicate
/// publications from different producers can briefly coexist in the
/// store; they cost segment space, never a double attach.
///
/// Thread-safety summary: an endpoint is driven by exactly one worker
/// thread (exports and imports both). Cross-thread traffic flows only
/// through the chunks' atomic `published` counters and `next` pointers
/// (release/acquire pairs), plus relaxed monotone counters for
/// observability.

#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "cnf/literal.h"
#include "sat/share.h"

namespace msu {

/// Sharded clause store + per-worker endpoints. Endpoints are handed to
/// Solver::Options::share and must not outlive the pool.
class SharedClausePool {
 public:
  /// Literal slots per chunk (16 KiB of literals).
  static constexpr std::uint32_t kChunkLits = 1u << 12;
  /// Clause records per chunk.
  static constexpr std::uint32_t kChunkRecs = 1u << 9;
  /// Chunks a segment may grow to before exports are dropped (bounds a
  /// segment at ~20 KiB * kMaxChunks; sharing traffic is deliberately
  /// thin, so a full segment signals a pathological export rate).
  static constexpr int kMaxChunks = 64;

  /// `numWorkers` fixes the endpoint count; `numSharedVars` is the
  /// shared variable prefix (clauses are validated against it in debug
  /// builds — the exporting solver already filters).
  SharedClausePool(int numWorkers, int numSharedVars)
      : num_shared_vars_(numSharedVars) {
    segments_.reserve(static_cast<std::size_t>(numWorkers));
    endpoints_.reserve(static_cast<std::size_t>(numWorkers));
    for (int w = 0; w < numWorkers; ++w) {
      segments_.push_back(std::make_unique<Segment>());
    }
    for (int w = 0; w < numWorkers; ++w) {
      endpoints_.push_back(
          std::unique_ptr<Endpoint>(new Endpoint(this, w, numWorkers)));
    }
  }

  SharedClausePool(const SharedClausePool&) = delete;
  SharedClausePool& operator=(const SharedClausePool&) = delete;

  /// Worker `w`'s exchange endpoint (attach to Solver::Options::share).
  [[nodiscard]] ClauseShare* endpoint(int w) {
    return endpoints_[static_cast<std::size_t>(w)].get();
  }

  /// Clauses currently published across all segments. (Unlike the old
  /// globally-deduplicated store, the same clause published by two
  /// producers counts twice here; dedup happens at the endpoints.)
  [[nodiscard]] std::int64_t numClauses() const {
    std::int64_t n = 0;
    for (const auto& seg : segments_) {
      n += seg->published_total.load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Publications or deliveries skipped by endpoint fingerprint dedup.
  [[nodiscard]] std::int64_t numDuplicates() const {
    std::int64_t n = 0;
    for (const auto& ep : endpoints_) {
      n += ep->duplicates.load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Exports dropped because the producer's segment hit its chunk
  /// ceiling.
  [[nodiscard]] std::int64_t numExportDrops() const {
    std::int64_t n = 0;
    for (const auto& seg : segments_) {
      n += seg->drops.load(std::memory_order_relaxed);
    }
    return n;
  }

 private:
  /// Location of one clause inside its chunk's literal array.
  struct Rec {
    std::uint32_t offset;
    std::uint32_t size;
  };

  /// One epoch of a segment. The owning producer fills `lits`/`recs`
  /// and publishes with a release store of `published`; once `next` is
  /// set the chunk is frozen (its `published` never moves again).
  struct Chunk {
    std::array<Lit, kChunkLits> lits;
    std::array<Rec, kChunkRecs> recs;
    std::atomic<std::uint32_t> published{0};
    std::atomic<Chunk*> next{nullptr};
    // Producer-private write positions (readers never touch these).
    std::uint32_t lits_used = 0;
    std::uint32_t recs_used = 0;
  };

  /// One worker's append-only publication arena.
  struct Segment {
    Segment() : head(new Chunk), tail(head) {}
    ~Segment() {
      for (Chunk* c = head; c != nullptr;) {
        Chunk* n = c->next.load(std::memory_order_relaxed);
        delete c;
        c = n;
      }
    }
    Chunk* const head;  ///< readers start here; immutable
    Chunk* tail;        ///< producer-private current chunk
    int num_chunks = 1; ///< producer-private
    std::atomic<std::int64_t> published_total{0};
    std::atomic<std::int64_t> drops{0};
  };

  /// One reader's position inside a foreign segment.
  struct Cursor {
    const Chunk* chunk = nullptr;  ///< lazily seated at segment head
    std::uint32_t rec = 0;         ///< next unread record in `chunk`
    std::int64_t consumed = 0;     ///< records scanned so far (pending check)
  };

  /// One worker's view of the pool. Owned and driven by exactly one
  /// thread; `duplicates` is atomic only so tests may read it after the
  /// workers joined.
  class Endpoint final : public ClauseShare {
   public:
    Endpoint(SharedClausePool* pool, int worker, int numWorkers)
        : pool_(pool), worker_(worker) {
      cursors_.resize(static_cast<std::size_t>(numWorkers));
    }

    bool exportClause(std::span<const Lit> lits, int glue) override {
      static_cast<void>(glue);  // the exporter already filtered on it
      if (!seen_.insert(fingerprint(lits)).second) {
        duplicates.fetch_add(1, std::memory_order_relaxed);
        return false;  // already published or imported by this worker
      }
      return pool_->publish(worker_, lits);
    }

    int importClauses(
        const std::function<void(std::span<const Lit>)>& consume,
        int maxClauses) override {
      int scanned = 0;
      int delivered = 0;
      const int n = static_cast<int>(cursors_.size());
      // Rotate the starting producer so a budget cap cannot starve the
      // later segments forever.
      rotate_ = (rotate_ + 1) % n;
      for (int step = 0; step < n; ++step) {
        const int p = (rotate_ + step) % n;
        if (p == worker_) continue;
        const Segment& seg = *pool_->segments_[static_cast<std::size_t>(p)];
        Cursor& cur = cursors_[static_cast<std::size_t>(p)];
        if (cur.chunk == nullptr) cur.chunk = seg.head;
        while (maxClauses < 0 || delivered < maxClauses) {
          const std::uint32_t pub =
              cur.chunk->published.load(std::memory_order_acquire);
          if (cur.rec >= pub) {
            const Chunk* next = cur.chunk->next.load(std::memory_order_acquire);
            if (next == nullptr) break;  // fully drained for now
            cur.chunk = next;
            cur.rec = 0;
            continue;
          }
          const Rec r = cur.chunk->recs[cur.rec++];
          ++cur.consumed;
          ++scanned;
          const std::span<const Lit> lits(cur.chunk->lits.data() + r.offset,
                                          r.size);
          if (!seen_.insert(fingerprint(lits)).second) {
            duplicates.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          ++delivered;
          consume(lits);
        }
      }
      return scanned;
    }

    [[nodiscard]] bool hasPending() const override {
      const int n = static_cast<int>(cursors_.size());
      for (int p = 0; p < n; ++p) {
        if (p == worker_) continue;
        const Segment& seg = *pool_->segments_[static_cast<std::size_t>(p)];
        if (seg.published_total.load(std::memory_order_relaxed) >
            cursors_[static_cast<std::size_t>(p)].consumed) {
          return true;
        }
      }
      return false;
    }

    std::atomic<std::int64_t> duplicates{0};

   private:
    SharedClausePool* pool_;
    int worker_;
    int rotate_ = -1;  // first drain starts at producer 0
    std::vector<Cursor> cursors_;  ///< one per producer segment
    std::unordered_set<std::uint64_t> seen_;  ///< published/imported fps
  };

  /// Appends `lits` to worker `w`'s segment. Producer-only except for
  /// the release publication stores. Returns false on a segment-full
  /// drop.
  bool publish(int w, std::span<const Lit> lits) {
    assert(!lits.empty() && lits.size() <= kChunkLits);
    Segment& seg = *segments_[static_cast<std::size_t>(w)];
#ifndef NDEBUG
    for (const Lit p : lits) {
      assert(p.var() >= 0 && p.var() < num_shared_vars_);
    }
#endif
    Chunk* c = seg.tail;
    const auto size = static_cast<std::uint32_t>(lits.size());
    if (c->recs_used == kChunkRecs || c->lits_used + size > kChunkLits) {
      if (seg.num_chunks >= kMaxChunks) {
        seg.drops.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      // New epoch: fill the fresh chunk completely, then link it with a
      // release store — readers acquire `next`, which carries the
      // clause data and the initial `published` count with it.
      Chunk* n = new Chunk;
      std::copy(lits.begin(), lits.end(), n->lits.begin());
      n->recs[0] = Rec{0, size};
      n->lits_used = size;
      n->recs_used = 1;
      n->published.store(1, std::memory_order_relaxed);
      c->next.store(n, std::memory_order_release);
      seg.tail = n;
      ++seg.num_chunks;
    } else {
      std::copy(lits.begin(), lits.end(), c->lits.begin() + c->lits_used);
      c->recs[c->recs_used] = Rec{c->lits_used, size};
      c->lits_used += size;
      ++c->recs_used;
      // Publication point: everything written above becomes visible to
      // any reader that acquires the new count.
      c->published.store(c->recs_used, std::memory_order_release);
    }
    seg.published_total.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Fingerprint over the *sorted* literal set, so the same clause
  /// learnt in different literal orders by different workers
  /// deduplicates.
  [[nodiscard]] static std::uint64_t fingerprint(std::span<const Lit> lits) {
    std::array<std::int32_t, 64> buf;  // export ceiling is far below this
    const std::size_t n = std::min(lits.size(), buf.size());
    for (std::size_t i = 0; i < n; ++i) buf[i] = lits[i].index();
    std::sort(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
    std::uint64_t h = 0x9E3779B97F4A7C15ull ^ (n * 0x2545F4914F6CDD1Dull);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(buf[i]));
      h *= 0x100000001B3ull;
      h ^= h >> 29;
    }
    return h;
  }

  int num_shared_vars_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace msu
