/// \file clause_pool.h
/// \brief The shared learnt-clause pool of the parallel portfolio: a
///        mutex-guarded append-only store with one export/import
///        endpoint per worker.
///
/// ## Why sharing across *heterogeneous* engines is sound
///
/// Every worker solves the same MaxSAT instance, but each engine mixes
/// the instance's hard clauses with clauses of its own: selector-
/// augmented soft clauses `(C_i ∨ s_i)`, cardinality/PB encodings over
/// the selectors, bound restrictions, at-least-one-blocking clauses.
/// Those additions are *not* consequences of the instance — importing
/// them (or anything derived from them) into a worker at a different
/// search state could cut optimal models and change the answer.
///
/// The export filter (Solver::maybeExportLearnt) admits only clauses
/// whose variables all lie in the shared prefix `[0, numVars)` of the
/// original formula. That is sufficient because the engine layer keeps
/// every addition in one of two shapes:
///
///  * a *conservative extension*: selector-augmented softs (the
///    selector appears only positively, so setting it true satisfies
///    the clause under any assignment of the originals) and encoding
///    definitions over fresh auxiliaries — any model of the hard
///    clauses extends to a model of these; or
///  * a *guarded restriction*: everything that genuinely cuts models
///    (bound units, per-bound structures) lives in an encoding scope,
///    so each clause carries a `~act` guard whose positive literal
///    appears in no clause whatsoever — resolution can never eliminate
///    the guard, and every learnt descendant keeps a literal above the
///    shared prefix. (IncrementalAtMost routes even the incremental
///    totalizer's monotone bound units through a permanent scope for
///    exactly this reason; clauses touching activator-tagged scope
///    variables are thus never exported, which also keeps sharing
///    sound under physical scope retirement.)
///
/// Hence any learnt clause over original variables only is derivable
/// from the hard clauses plus conservative extensions alone, and by
/// conservativity is a consequence of the hard clauses — attachable by
/// every other worker, whatever its engine, bound state or retirement
/// history. The portfolio only hands endpoints to engines that obey
/// this discipline (see PortfolioOptions::engines).
///
/// ## Mechanics
///
/// The pool stores clauses in one flat literal array with a per-clause
/// producer id; each endpoint keeps a read cursor into the store, so a
/// worker imports every clause published by *others* exactly once and
/// never re-imports its own exports. A fingerprint set deduplicates
/// identical clauses across workers (first publisher wins). All
/// operations take one std::mutex — export traffic is deliberately thin
/// (short, low-LBD clauses only), so contention is negligible next to
/// search.

#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "cnf/literal.h"
#include "sat/share.h"

namespace msu {

/// Shared clause store + per-worker endpoints. Thread-safe; endpoints
/// are handed to Solver::Options::share and must not outlive the pool.
class SharedClausePool {
 public:
  /// `numWorkers` fixes the endpoint count; `numSharedVars` is the
  /// shared variable prefix (clauses are validated against it in debug
  /// builds — the exporting solver already filters).
  SharedClausePool(int numWorkers, int numSharedVars)
      : num_shared_vars_(numSharedVars) {
    endpoints_.reserve(static_cast<std::size_t>(numWorkers));
    for (int w = 0; w < numWorkers; ++w) {
      endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(this, w)));
    }
  }

  SharedClausePool(const SharedClausePool&) = delete;
  SharedClausePool& operator=(const SharedClausePool&) = delete;

  /// Worker `w`'s exchange endpoint (attach to Solver::Options::share).
  [[nodiscard]] ClauseShare* endpoint(int w) {
    return endpoints_[static_cast<std::size_t>(w)].get();
  }

  /// Clauses currently stored (deduplicated publications).
  [[nodiscard]] std::int64_t numClauses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::int64_t>(index_.size());
  }

  /// Publications rejected as duplicates of an already-stored clause.
  [[nodiscard]] std::int64_t numDuplicates() const {
    std::lock_guard<std::mutex> lock(mu_);
    return duplicates_;
  }

 private:
  /// One worker's view of the pool.
  class Endpoint final : public ClauseShare {
   public:
    Endpoint(SharedClausePool* pool, int worker)
        : pool_(pool), worker_(worker) {}

    void exportClause(std::span<const Lit> lits, int glue) override {
      pool_->publish(worker_, lits, glue);
    }

    void importClauses(
        const std::function<void(std::span<const Lit>)>& consume) override {
      pool_->consume(worker_, cursor_, consume);
    }

   private:
    SharedClausePool* pool_;
    int worker_;
    std::size_t cursor_ = 0;  ///< next unread index into index_
  };

  /// Location of one stored clause in the flat literal array.
  struct ClauseRec {
    std::uint32_t offset;
    std::uint16_t size;
    std::uint16_t producer;
  };

  void publish(int worker, std::span<const Lit> lits, int glue) {
    static_cast<void>(glue);  // the exporter already filtered on it
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t fp = fingerprint(lits);
    if (!seen_.insert(fp).second) {
      ++duplicates_;
      return;  // identical clause already published (first wins)
    }
    ClauseRec rec;
    rec.offset = static_cast<std::uint32_t>(store_.size());
    rec.size = static_cast<std::uint16_t>(lits.size());
    rec.producer = static_cast<std::uint16_t>(worker);
    for (const Lit p : lits) {
      assert(p.var() >= 0 && p.var() < num_shared_vars_);
      store_.push_back(p);
    }
    index_.push_back(rec);
  }

  void consume(int worker, std::size_t& cursor,
               const std::function<void(std::span<const Lit>)>& fn) {
    // Copy the unread clauses out under the lock, then deliver them
    // unlocked: the consumer attaches clauses and runs unit propagation,
    // which must not stall the other workers' hot-path exports.
    std::vector<Lit> batch;
    std::vector<std::uint32_t> sizes;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (; cursor < index_.size(); ++cursor) {
        const ClauseRec& rec = index_[cursor];
        if (static_cast<int>(rec.producer) == worker) continue;
        const auto first =
            store_.begin() + static_cast<std::ptrdiff_t>(rec.offset);
        batch.insert(batch.end(), first,
                     first + static_cast<std::ptrdiff_t>(rec.size));
        sizes.push_back(rec.size);
      }
    }
    std::size_t off = 0;
    for (const std::uint32_t n : sizes) {
      fn(std::span<const Lit>(batch.data() + off, n));
      off += n;
    }
  }

  /// Fingerprint over the *sorted* literal set, so the same clause
  /// learnt in different literal orders by different workers
  /// deduplicates.
  [[nodiscard]] static std::uint64_t fingerprint(std::span<const Lit> lits) {
    std::array<std::int32_t, 64> buf;  // export ceiling is far below this
    const std::size_t n = std::min(lits.size(), buf.size());
    for (std::size_t i = 0; i < n; ++i) buf[i] = lits[i].index();
    std::sort(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
    std::uint64_t h = 0x9E3779B97F4A7C15ull ^ (n * 0x2545F4914F6CDD1Dull);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(buf[i]));
      h *= 0x100000001B3ull;
      h ^= h >> 29;
    }
    return h;
  }

  mutable std::mutex mu_;
  int num_shared_vars_;
  std::vector<Lit> store_;        ///< flat literal array
  std::vector<ClauseRec> index_;  ///< one record per stored clause
  std::unordered_set<std::uint64_t> seen_;  ///< clause fingerprints
  std::int64_t duplicates_ = 0;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace msu
