#include "par/portfolio.h"

#include <atomic>
#include <cassert>
#include <mutex>
#include <sstream>
#include <thread>

#include "harness/factory.h"
#include "obs/trace.h"
#include "par/clause_pool.h"

namespace msu {

namespace {

/// Deterministic per-worker perturbation source (splitmix64 steps).
class PerturbRng {
 public:
  explicit PerturbRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint64_t next(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

}  // namespace

PortfolioSolver::PortfolioSolver(PortfolioOptions options)
    : opts_(std::move(options)) {
  if (opts_.threads < 1) opts_.threads = 1;
  // Drop engine names the factory cannot build (and nested parallel
  // solvers, which would multiply threads), rather than crashing a
  // worker later.
  std::erase_if(opts_.engines, [](const std::string& name) {
    return name.rfind("portfolio", 0) == 0 || name.rfind("cubes", 0) == 0 ||
           makeSolver(name, MaxSatOptions{}) == nullptr;
  });
  if (opts_.engines.empty()) opts_.engines = defaultEngines();
}

const std::vector<std::string>& PortfolioSolver::defaultEngines() {
  // Ordered for complementarity at small thread counts: the msu4/msu3
  // core-guided pair, the weighted-native oll, then the CDCL-free
  // branch-and-bound — a structurally different search that pays off
  // exactly where the core-guided family stalls (near-threshold random
  // instances, weighted max-cut) — and only then further variants.
  static const std::vector<std::string> kEngines{
      "msu4-v2", "msu3", "oll", "maxsatz", "linear", "msu4-v1", "binary"};
  return kEngines;
}

bool PortfolioSolver::engineSharesSafely(const std::string& name) {
  // Engines that load the instance's hard clauses verbatim and keep
  // every restriction scope-guarded or above the original-variable
  // prefix (see par/clause_pool.h). Excluded: "bmo" (solves derived
  // per-stratum instances whose hard clauses embed frozen bounds),
  // "pbo"/"pbo-adder" (assert objective bounds as raw hard clauses) and
  // "maxsatz" (no CDCL oracle to wire up).
  return name.rfind("msu4", 0) == 0 || name == "msu3" || name == "msu1" ||
         name == "wmsu1" || name == "oll" || name == "linear" ||
         name == "binary" || name.rfind("wlinear", 0) == 0;
}

std::string PortfolioSolver::name() const {
  std::ostringstream os;
  os << "portfolio-" << opts_.threads << "(" << opts_.engines.front() << ")";
  return os.str();
}

std::vector<PortfolioSolver::WorkerConfig> PortfolioSolver::buildConfigs()
    const {
  std::vector<WorkerConfig> configs;
  configs.reserve(static_cast<std::size_t>(opts_.threads));
  for (int w = 0; w < opts_.threads; ++w) {
    WorkerConfig cfg;
    cfg.engine = opts_.engines[static_cast<std::size_t>(w) %
                               opts_.engines.size()];
    cfg.opts = opts_.base;
    cfg.description = cfg.engine;
    if (w == 0) {
      // Worker 0 is the base configuration, untouched: the 1-thread
      // portfolio must be indistinguishable from the plain engine.
      configs.push_back(std::move(cfg));
      continue;
    }
    // Deterministic diversification: restart policy/pacing (including
    // the adaptive EMA trajectory), phase saving and VSIDS decay. Mild
    // by design — every configuration must stay a sensible
    // general-purpose solver.
    PerturbRng rng((static_cast<std::uint64_t>(opts_.seed) << 32) ^
                   static_cast<std::uint64_t>(w));
    Solver::Options& sat = cfg.opts.sat;
    sat.luby_restarts = rng.next(4) != 0;  // 3:1 Luby vs geometric
    static constexpr int kRestartBases[] = {50, 100, 150, 250};
    sat.restart_base = kRestartBases[rng.next(4)];
    static constexpr double kVarDecays[] = {0.95, 0.99, 0.90, 0.85};
    sat.var_decay = kVarDecays[rng.next(4)];
    sat.phase_saving = rng.next(8) != 0;  // rarely off
    sat.lbd_reduce = rng.next(4) == 0;    // tiered learnt DB for variety
    // A third of the perturbed workers race the adaptive restart
    // trajectory (EMA + stable/focused switching + best-phase
    // rephasing) against the fixed schedules.
    sat.ema_restarts = rng.next(3) == 0;
    std::ostringstream os;
    os << cfg.engine << " "
       << (sat.ema_restarts ? "ema" : (sat.luby_restarts ? "luby" : "geom"))
       << "/" << sat.restart_base << " vd=" << sat.var_decay
       << (sat.phase_saving ? "" : " nophase")
       << (sat.lbd_reduce ? " lbd" : "");
    cfg.description = os.str();
    configs.push_back(std::move(cfg));
  }
  return configs;
}

std::vector<std::string> PortfolioSolver::workerDescriptions() const {
  std::vector<std::string> out;
  for (const WorkerConfig& cfg : buildConfigs()) {
    out.push_back(cfg.description);
  }
  return out;
}

MaxSatResult PortfolioSolver::solve(const WcnfFormula& formula) {
  last_winner_ = -1;
  last_winner_engine_.clear();
  std::vector<WorkerConfig> configs = buildConfigs();

  if (opts_.threads == 1) {
    // Deterministic single-thread mode: run the base configuration in
    // place, with no pool, stop flag or extra thread anywhere near it.
    std::unique_ptr<MaxSatSolver> solver =
        makeSolver(configs[0].engine, configs[0].opts);
    if (solver == nullptr) return MaxSatResult{};  // ctor validated; belt
    MaxSatResult r = solver->solve(formula);
    if (r.status != MaxSatStatus::Unknown) {
      last_winner_ = 0;
      last_winner_engine_ = configs[0].engine;
    }
    return r;
  }

  const int n = opts_.threads;
  SharedClausePool pool(n, formula.numVars());
  std::atomic<bool> stop{false};
  std::vector<MaxSatResult> results(static_cast<std::size_t>(n));

  for (int w = 0; w < n; ++w) {
    WorkerConfig& cfg = configs[static_cast<std::size_t>(w)];
    cfg.opts.budget.setInterrupt(&stop);
    if (opts_.shareClauses && engineSharesSafely(cfg.engine)) {
      cfg.opts.sat.share = pool.endpoint(w);
      cfg.opts.sat.share_max_size = opts_.shareMaxSize;
      cfg.opts.sat.share_max_lbd = opts_.shareMaxLbd;
      cfg.opts.sat.share_num_vars = formula.numVars();
    }
  }

  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w) {
      workers.emplace_back([&, w] {
        const WorkerConfig& cfg = configs[static_cast<std::size_t>(w)];
        obs::TraceSpan span(cfg.opts.sat.trace, obs::TraceCat::kWorker,
                            "portfolio-worker");
        span.arg("worker", w);
        std::unique_ptr<MaxSatSolver> solver =
            makeSolver(cfg.engine, cfg.opts);
        if (solver == nullptr) return;  // ctor validated; stays Unknown
        MaxSatResult r = solver->solve(formula);
        if (r.status != MaxSatStatus::Unknown) {
          // First finisher wins: everyone else unwinds at their next
          // budget poll. Decisive results all carry the same optimum,
          // so there is no race on the answer itself.
          stop.store(true, std::memory_order_release);
          obs::traceInstant(cfg.opts.sat.trace, obs::TraceCat::kWorker,
                            "portfolio-finish", "worker", w);
        }
        results[static_cast<std::size_t>(w)] = std::move(r);
      });
    }
    for (std::thread& t : workers) t.join();
  }

  // Merge: any decisive result is the answer (they agree); pick the
  // lowest worker index for reproducible diagnostics. Statistics are
  // summed across every worker so shared/imported counters and the
  // total work performed are visible to the harness.
  MaxSatResult merged;
  int winner = -1;
  for (int w = 0; w < n; ++w) {
    const MaxSatResult& r = results[static_cast<std::size_t>(w)];
    if (winner < 0 && r.status != MaxSatStatus::Unknown) winner = w;
  }
  if (winner >= 0) {
    merged = std::move(results[static_cast<std::size_t>(winner)]);
    last_winner_ = winner;
    last_winner_engine_ = configs[static_cast<std::size_t>(winner)].engine;
  } else {
    // Everyone ran out of budget: combine the soundest bounds. Every
    // worker's lower bound is individually proven, so the max holds;
    // upper bounds are only real when witnessed by a model.
    merged.status = MaxSatStatus::Unknown;
    Weight upper = formula.totalSoftWeight();
    for (int w = 0; w < n; ++w) {
      const MaxSatResult& r = results[static_cast<std::size_t>(w)];
      merged.lowerBound = std::max(merged.lowerBound, r.lowerBound);
      if (!r.model.empty() && r.upperBound <= upper) {
        upper = r.upperBound;
        merged.model = r.model;
      }
    }
    merged.upperBound = upper;
  }
  for (int w = 0; w < n; ++w) {
    if (w == winner) continue;  // merged already carries its numbers
    const MaxSatResult& r = results[static_cast<std::size_t>(w)];
    merged.iterations += r.iterations;
    merged.coresFound += r.coresFound;
    merged.satCalls += r.satCalls;
    merged.satStats += r.satStats;
  }
  return merged;
}

}  // namespace msu
