/// \file portfolio.h
/// \brief Parallel MaxSAT portfolio: race N diversified engine
///        configurations on the same instance across a thread pool,
///        with first-finisher-wins cancellation and inter-oracle
///        learnt-clause sharing.
///
/// The msu3/msu4 family spends essentially all of its time inside
/// sequential SAT-oracle calls; a portfolio is the classic way to buy
/// wall-clock time with cores without touching the algorithms
/// themselves. Each worker runs a complete engine (msu3, msu4 variants,
/// oll, linear search, ...) built by the harness factory, on a solver
/// configuration perturbed per worker (restart policy and pacing,
/// phase saving, VSIDS decay). Workers cooperate two ways:
///
///  * **Cancellation.** Every worker's Budget carries the portfolio's
///    shared stop flag (Budget::setInterrupt); the first worker to
///    reach a decisive result (Optimum / UnsatisfiableHard) raises it
///    and everyone else unwinds at the next budget poll. Decisive
///    workers agree by construction — every engine is answer-correct —
///    so which one wins only affects diagnostics, never the result.
///
///  * **Clause sharing.** Workers whose engines obey the sharing
///    discipline (see par/clause_pool.h) export short, low-LBD learnt
///    clauses over the original variables into a SharedClausePool
///    (lock-free per-worker segments) and import the other workers'
///    clauses in budgeted drains on a conflict cadence — at forced
///    level-0 backtracks inside search, not just at restart
///    boundaries (Solver::Options::share_import_interval).
///
/// With `threads == 1` the portfolio degenerates to running the base
/// configuration synchronously — no pool, no stop flag, no extra
/// threads — and is therefore bit-for-bit deterministic, identical to
/// invoking the base engine directly.

#pragma once

#include <string>
#include <vector>

#include "core/maxsat.h"

namespace msu {

/// Configuration of a PortfolioSolver.
struct PortfolioOptions {
  /// Options shared by every worker (budget, cardinality encoding,
  /// trimming, ...). Worker 0 runs them verbatim; workers 1.. run
  /// deterministic perturbations.
  MaxSatOptions base;

  /// Number of racing workers.
  int threads = 1;

  /// Engine names cycled across workers (factory names); empty selects
  /// defaultEngines(). The first entry is worker 0's engine.
  std::vector<std::string> engines;

  /// Inter-oracle learnt-clause sharing (only engines whose additions
  /// satisfy the sharing discipline participate; see
  /// engineSharesSafely).
  bool shareClauses = true;
  int shareMaxSize = 8;  ///< export ceiling on clause length
  int shareMaxLbd = 4;   ///< export ceiling on LBD

  /// Seed of the deterministic per-worker perturbation.
  unsigned seed = 1;
};

/// The portfolio runner. Answer-correct for any thread count; exactly
/// reproduces the base engine at threads == 1.
class PortfolioSolver final : public MaxSatSolver {
 public:
  explicit PortfolioSolver(PortfolioOptions options);

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

  /// Engine cycle used when PortfolioOptions::engines is empty.
  [[nodiscard]] static const std::vector<std::string>& defaultEngines();

  /// True iff the named engine keeps every non-consequence clause it
  /// adds either scope-guarded or outside the original-variable prefix,
  /// making it safe to wire into the shared clause pool (see
  /// par/clause_pool.h for the argument).
  [[nodiscard]] static bool engineSharesSafely(const std::string& name);

  /// One human-readable description per worker ("msu4-v2",
  /// "msu3 luby=0 rb=150", ...), in worker order.
  [[nodiscard]] std::vector<std::string> workerDescriptions() const;

  /// Worker index and engine name of the decisive worker of the last
  /// solve (-1 / empty when the last solve ended Unknown).
  [[nodiscard]] int lastWinner() const { return last_winner_; }
  [[nodiscard]] const std::string& lastWinnerEngine() const {
    return last_winner_engine_;
  }

 private:
  struct WorkerConfig {
    std::string engine;
    MaxSatOptions opts;
    std::string description;
  };

  [[nodiscard]] std::vector<WorkerConfig> buildConfigs() const;

  PortfolioOptions opts_;
  int last_winner_ = -1;
  std::string last_winner_engine_;
};

}  // namespace msu
