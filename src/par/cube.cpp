#include "par/cube.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <limits>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "core/oracle_session.h"
#include "core/wlinear.h"
#include "encodings/cardinality.h"
#include "obs/trace.h"
#include "par/clause_pool.h"
#include "par/worksteal.h"

namespace msu {

namespace {

/// Counter-based BCP lookahead over the hard clauses only: per clause a
/// true/false literal count, per literal an occurrence list, a trail
/// with mark/undo. Deliberately tiny — the splitter runs once per
/// solve, on the original formula, before any worker starts.
class Lookahead {
 public:
  explicit Lookahead(const WcnfFormula& f)
      : clauses_(f.hard()),
        values_(static_cast<std::size_t>(f.numVars()), lbool::Undef),
        occ_(static_cast<std::size_t>(f.numVars()) * 2),
        occ_count_(static_cast<std::size_t>(f.numVars()), 0) {
    n_true_.assign(clauses_.size(), 0);
    n_false_.assign(clauses_.size(), 0);
    for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
      for (const Lit p : clauses_[ci]) {
        occ_[static_cast<std::size_t>(p.index())].push_back(
            static_cast<int>(ci));
        ++occ_count_[static_cast<std::size_t>(p.var())];
      }
    }
    // Variables in descending occurrence order: the node-level
    // candidate scan walks this once and takes the first unassigned k.
    by_occ_.resize(values_.size());
    for (std::size_t v = 0; v < by_occ_.size(); ++v) {
      by_occ_[v] = static_cast<Var>(v);
    }
    std::stable_sort(by_occ_.begin(), by_occ_.end(), [&](Var a, Var b) {
      return occ_count_[static_cast<std::size_t>(a)] >
             occ_count_[static_cast<std::size_t>(b)];
    });
  }

  /// Asserts the root facts: empty hard clauses refute outright, unit
  /// hard clauses propagate. Returns false on a root conflict.
  bool assertRoot() {
    for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
      if (clauses_[ci].empty()) return false;
      if (clauses_[ci].size() == 1 && !enqueue(clauses_[ci][0])) return false;
    }
    return propagate();
  }

  [[nodiscard]] lbool value(Lit p) const {
    const lbool v = values_[static_cast<std::size_t>(p.var())];
    if (v == lbool::Undef) return lbool::Undef;
    return (v == lbool::True) != p.negative() ? lbool::True : lbool::False;
  }

  [[nodiscard]] std::size_t mark() const { return trail_.size(); }

  void undoTo(std::size_t mark) {
    while (trail_.size() > mark) {
      const Lit p = trail_.back();
      trail_.pop_back();
      values_[static_cast<std::size_t>(p.var())] = lbool::Undef;
      for (const int ci : occ_[static_cast<std::size_t>(p.index())]) {
        --n_true_[static_cast<std::size_t>(ci)];
      }
      for (const int ci : occ_[static_cast<std::size_t>((~p).index())]) {
        --n_false_[static_cast<std::size_t>(ci)];
      }
    }
    qhead_ = trail_.size();
  }

  /// Assigns `p` and runs BCP to fixpoint. Returns false on conflict
  /// (state is NOT rolled back; the caller undoes to its mark).
  bool assign(Lit p) { return enqueue(p) && propagate(); }

  /// Propagations caused since `mark` (the lookahead score input).
  [[nodiscard]] std::size_t propsSince(std::size_t mark) const {
    return trail_.size() - mark;
  }

  /// First `k` unassigned variables in descending occurrence order,
  /// skipping variables that occur in no hard clause (branching on them
  /// cannot split anything).
  void candidates(int k, std::vector<Var>& out) const {
    out.clear();
    for (const Var v : by_occ_) {
      if (static_cast<int>(out.size()) >= k) break;
      if (occ_count_[static_cast<std::size_t>(v)] == 0) break;  // sorted
      if (values_[static_cast<std::size_t>(v)] == lbool::Undef) {
        out.push_back(v);
      }
    }
  }

 private:
  bool enqueue(Lit p) {
    const lbool v = value(p);
    if (v == lbool::True) return true;
    if (v == lbool::False) return false;
    values_[static_cast<std::size_t>(p.var())] =
        p.positive() ? lbool::True : lbool::False;
    trail_.push_back(p);
    for (const int ci : occ_[static_cast<std::size_t>(p.index())]) {
      ++n_true_[static_cast<std::size_t>(ci)];
    }
    for (const int ci : occ_[static_cast<std::size_t>((~p).index())]) {
      ++n_false_[static_cast<std::size_t>(ci)];
    }
    return true;
  }

  bool propagate() {
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      // Clauses where ~p just got falsified may have become unit/empty.
      for (const int ci : occ_[static_cast<std::size_t>((~p).index())]) {
        const auto i = static_cast<std::size_t>(ci);
        if (n_true_[i] > 0) continue;
        const std::size_t sz = clauses_[i].size();
        const std::size_t nf = static_cast<std::size_t>(n_false_[i]);
        if (nf == sz) return false;  // conflict
        if (nf + 1 == sz) {
          // Unit: find and enqueue the single unassigned literal.
          for (const Lit q : clauses_[i]) {
            if (value(q) == lbool::Undef) {
              if (!enqueue(q)) return false;
              break;
            }
          }
        }
      }
    }
    return true;
  }

  const std::vector<Clause>& clauses_;
  std::vector<lbool> values_;
  std::vector<std::vector<int>> occ_;  // lit index -> clause indices
  std::vector<int> occ_count_;         // var -> total occurrences
  std::vector<Var> by_occ_;            // vars, descending occurrence
  std::vector<int> n_true_;
  std::vector<int> n_false_;
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
};

/// Recursive DFS splitter state.
struct Splitter {
  Lookahead la;
  CubeSplitOptions opts;
  CubeSplitResult out;
  std::vector<Lit> path;  // decisions + failed-literal assertions
  std::vector<Var> cand_buf;

  Splitter(const WcnfFormula& f, const CubeSplitOptions& o) : la(f), opts(o) {}

  void emitLeaf() { out.cubes.push_back(path); }

  /// Expands the current node. The lookahead state holds the node's
  /// assignment; `path` holds the cube-so-far. Refuted subtrees emit
  /// nothing (BCP already proved them hard-model-free).
  void node(int depth) {
    while (true) {
      if (static_cast<int>(out.cubes.size()) >= opts.maxCubes ||
          depth >= opts.maxDepth) {
        emitLeaf();
        return;
      }
      la.candidates(opts.candidates, cand_buf);
      if (cand_buf.empty()) {
        emitLeaf();
        return;
      }
      // Probe each candidate in both polarities; failed literals are
      // asserted and restart the loop (the node shrank), a
      // both-polarity failure refutes the node.
      Var bestVar = kUndefVar;
      std::uint64_t bestScore = 0;
      for (const Var v : cand_buf) {
        const std::size_t m = la.mark();
        const bool okPos = la.assign(posLit(v));
        const std::size_t propsPos = la.propsSince(m);
        la.undoTo(m);
        const bool okNeg = la.assign(negLit(v));
        const std::size_t propsNeg = la.propsSince(m);
        la.undoTo(m);
        if (!okPos && !okNeg) {
          ++out.prunedNodes;
          return;  // node refuted
        }
        if (!okPos || !okNeg) {
          const Lit forced = okPos ? posLit(v) : negLit(v);
          ++out.failedLiterals;
          const bool ok = la.assign(forced);
          assert(ok);
          static_cast<void>(ok);
          path.push_back(forced);
          bestVar = kUndefVar;
          break;  // re-rank candidates against the grown assignment
        }
        const std::uint64_t score =
            (static_cast<std::uint64_t>(propsPos) + 1) *
            (static_cast<std::uint64_t>(propsNeg) + 1);
        if (bestVar == kUndefVar || score > bestScore) {
          bestVar = v;
          bestScore = score;
        }
      }
      if (bestVar == kUndefVar) continue;  // failed literal asserted
      // Branch: positive child first (DFS order keeps siblings
      // adjacent in the emitted cube list). The child may have grown
      // `path` with failed-literal assertions of its own, so restore
      // to the pre-decision length, not by a single pop — the sibling
      // branch must not inherit the other subtree's assertions.
      const std::size_t pathMark = path.size();
      for (const Lit dec : {posLit(bestVar), negLit(bestVar)}) {
        const std::size_t m = la.mark();
        path.push_back(dec);
        if (la.assign(dec)) {
          node(depth + 1);
        } else {
          ++out.prunedNodes;  // child refuted by BCP alone
        }
        path.resize(pathMark);
        la.undoTo(m);
      }
      return;
    }
  }
};

constexpr Weight kNoBound = std::numeric_limits<Weight>::max();

/// Conquest state shared by all workers of one solve.
struct SharedState {
  std::atomic<Weight> best_cost{kNoBound};  // incumbent cost (authoritative)
  std::mutex best_mx;                       // guards best_model
  Assignment best_model;
  std::atomic<bool> stop{false};
  std::atomic<bool> early_optimum{false};  // stop because incumbent cost == 0
  std::atomic<std::int64_t> cubes_unsat{0};   // UNSAT with no bound encoded
  std::atomic<std::int64_t> cubes_pruned{0};  // UNSAT under a bound
  std::atomic<std::int64_t> steals{0};
};

/// Per-worker accumulators folded into the merged result at the end.
struct WorkerOut {
  SolverStats stats;
  std::int64_t iterations = 0;
  std::int64_t sat_calls = 0;
  bool unknown = false;  // budget ran out mid-cube
};

}  // namespace

CubeSplitResult splitCubes(const WcnfFormula& formula,
                           const CubeSplitOptions& opts) {
  CubeSplitOptions o = opts;
  if (o.maxCubes <= 0) o.maxCubes = 16;
  if (o.maxDepth < 0) o.maxDepth = 0;
  if (o.candidates < 1) o.candidates = 1;
  Splitter sp(formula, o);
  if (!sp.la.assertRoot()) {
    sp.out.rootConflict = true;
    return std::move(sp.out);
  }
  sp.node(0);
  // A splitter tree whose every leaf was BCP-refuted is a refutation of
  // the hard clauses themselves.
  if (sp.out.cubes.empty()) sp.out.rootConflict = true;
  return std::move(sp.out);
}

CubeSolver::CubeSolver(CubeOptions options) : opts_(std::move(options)) {
  if (opts_.threads < 1) opts_.threads = 1;
}

std::string CubeSolver::name() const {
  std::ostringstream os;
  os << "cubes-" << opts_.threads;
  return os.str();
}

MaxSatResult CubeSolver::solve(const WcnfFormula& formula) {
  last_num_cubes_ = 0;
  last_steals_ = 0;
  const Weight total = formula.totalSoftWeight();

  CubeSplitOptions split = opts_.split;
  if (split.maxCubes <= 0) split.maxCubes = std::max(16, 8 * opts_.threads);
  obs::Tracer* const tracer = opts_.base.sat.trace;
  CubeSplitResult sr;
  {
    obs::TraceSpan splitSpan(tracer, obs::TraceCat::kCube, "cube-split");
    sr = splitCubes(formula, split);
    splitSpan.arg("cubes", static_cast<std::int64_t>(sr.cubes.size()));
  }
  last_num_cubes_ = static_cast<int>(sr.cubes.size());

  if (sr.rootConflict) {
    // BCP on the hard clauses alone (or a fully refuted split tree)
    // is a genuine refutation: no assignment satisfies the hards.
    MaxSatResult r;
    r.status = MaxSatStatus::UnsatisfiableHard;
    r.upperBound = total;
    return r;
  }

  if (sr.cubes.size() <= 1) {
    // Nothing to conquer in parallel. Delegate to the base engine the
    // per-cube loop mirrors — this is what makes the 1-worker
    // root-cube configuration bit-for-bit the base engine (the
    // determinism gate in tests/cube_test.cpp holds the other side).
    WeightedLinearSolver base(opts_.base, opts_.pb);
    return base.solve(formula);
  }

  const int numCubes = static_cast<int>(sr.cubes.size());
  const int n = std::max(1, std::min(opts_.threads, numCubes));
  SharedState shared;

  // DFS-ordered cubes are dealt to workers in contiguous blocks, pushed
  // in reverse so the owner's LIFO pop walks its block in ascending DFS
  // order — consecutive sibling cubes, maximal warm-start prefix reuse.
  std::vector<std::unique_ptr<WorkStealingDeque<int>>> deques;
  deques.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    deques.push_back(std::make_unique<WorkStealingDeque<int>>(
        static_cast<std::size_t>(numCubes)));
  }
  {
    const int per = (numCubes + n - 1) / n;
    for (int w = 0; w < n; ++w) {
      const int lo = w * per;
      const int hi = std::min(numCubes, lo + per);
      for (int c = hi - 1; c >= lo; --c) {
        const bool ok = deques[static_cast<std::size_t>(w)]->push(c);
        assert(ok);
        static_cast<void>(ok);
      }
    }
  }

  const bool sharing = opts_.shareClauses && n > 1;
  std::optional<SharedClausePool> pool;
  if (sharing) pool.emplace(n, formula.numVars());

  std::vector<WorkerOut> outs(static_cast<std::size_t>(n));

  auto workerRun = [&](int w, const Budget& budget) {
    obs::TraceSpan workerSpan(tracer, obs::TraceCat::kWorker, "cube-worker");
    workerSpan.arg("worker", w);
    WorkerOut& out = outs[static_cast<std::size_t>(w)];
    MaxSatOptions wopts = opts_.base;
    wopts.budget = budget;
    if (sharing) {
      wopts.sat.share = pool->endpoint(w);
      wopts.sat.share_max_size = opts_.shareMaxSize;
      wopts.sat.share_max_lbd = opts_.shareMaxLbd;
      wopts.sat.share_num_vars = formula.numVars();
    }
    OracleSession session(wopts);
    session.addHards(formula);

    // Blocking variable per soft clause (the wlinear/PBO formulation).
    // These live above the original-variable prefix, so clause sharing
    // stays sound.
    std::vector<PbTerm> terms;
    terms.reserve(static_cast<std::size_t>(formula.numSoft()));
    for (const SoftClause& sc : formula.soft()) {
      const Lit b = posLit(session.sat().newVar());
      Clause withB = sc.lits;
      withB.push_back(b);
      static_cast<void>(session.sat().addClause(withB));
      terms.push_back({b, sc.weight});
    }
    const bool unweighted = formula.isUnweighted();

    // The scope-retired bound constraint `cost <= encoded_bound_ub - 1`,
    // shared across this worker's cubes (it is cube-independent).
    ScopeHandle boundScope;
    Weight encodedUb = kNoBound;
    auto syncBound = [&] {
      const Weight ub = shared.best_cost.load(std::memory_order_acquire);
      if (ub >= encodedUb || ub > total || ub < 1) return;
      if (boundScope.defined()) session.retire(boundScope);
      boundScope = session.beginScope();
      if (unweighted) {
        std::vector<Lit> lits;
        lits.reserve(terms.size());
        for (const PbTerm& t : terms) lits.push_back(t.lit);
        encodeAtMost(session.sink(), lits, static_cast<int>(ub) - 1,
                     wopts.encoding);
      } else {
        encodePbLeq(session.sink(), terms, ub - 1, opts_.pb);
      }
      session.endScope(boundScope);
      encodedUb = ub;
    };

    // Take the next cube: own deque first (LIFO — deepest, warmest),
    // then steal round-robin. A lost steal race retries while any
    // deque still looks non-empty; all work is pre-pushed, so a clean
    // empty scan is a definitive exit.
    auto nextCube = [&]() -> std::optional<int> {
      while (true) {
        if (auto c = deques[static_cast<std::size_t>(w)]->pop()) return c;
        bool sawWork = false;
        for (int i = 1; i < n; ++i) {
          const auto v = static_cast<std::size_t>((w + i) % n);
          if (deques[v]->sizeApprox() <= 0) continue;
          sawWork = true;
          if (auto c = deques[v]->steal()) {
            shared.steals.fetch_add(1, std::memory_order_relaxed);
            obs::traceInstant(tracer, obs::TraceCat::kCube, "steal", "cube",
                              *c);
            return c;
          }
        }
        if (!sawWork) return std::nullopt;
      }
    };

    while (!shared.stop.load(std::memory_order_acquire)) {
      const std::optional<int> ci = nextCube();
      if (!ci) break;
      obs::TraceSpan cubeSpan(tracer, obs::TraceCat::kCube, "cube");
      cubeSpan.arg("cube", *ci);
      const std::vector<Lit>& cube = sr.cubes[static_cast<std::size_t>(*ci)];
      while (true) {
        if (shared.stop.load(std::memory_order_acquire)) goto done;
        syncBound();
        ++out.iterations;
        const bool bounded = boundScope.defined();
        const lbool st = session.solve(cube);
        if (st == lbool::Undef) {
          out.unknown = true;
          goto done;  // budget gone; the whole worker unwinds
        }
        if (st == lbool::False) {
          // Bounded: cube minimum >= encodedUb >= final UB — pruned.
          // Unbounded: the cube has no hard-model at all.
          (bounded ? shared.cubes_pruned : shared.cubes_unsat)
              .fetch_add(1, std::memory_order_relaxed);
          break;
        }
        Assignment model(static_cast<std::size_t>(formula.numVars()));
        for (Var v = 0; v < formula.numVars(); ++v) {
          model[static_cast<std::size_t>(v)] =
              session.sat().model()[static_cast<std::size_t>(v)];
        }
        const std::optional<Weight> cost = formula.cost(model);
        assert(cost.has_value());
        Weight c = *cost;
        {
          std::lock_guard<std::mutex> lock(shared.best_mx);
          if (c < shared.best_cost.load(std::memory_order_relaxed)) {
            shared.best_cost.store(c, std::memory_order_release);
            shared.best_model = std::move(model);
            if (opts_.base.onBounds) opts_.base.onBounds(0, c);
          }
        }
        if (shared.best_cost.load(std::memory_order_acquire) == 0) {
          // A zero-cost model is globally optimal; all cubes are moot.
          shared.early_optimum.store(true, std::memory_order_release);
          shared.stop.store(true, std::memory_order_release);
          goto done;
        }
        // Loop: syncBound() will demand a strictly better model.
      }
    }
  done:
    out.stats = session.sat().stats();
    out.sat_calls = session.satCalls();
  };

  if (n == 1) {
    // Sequential cube loop: no threads, no interrupt override — the
    // base budget (and any external canceller on it) applies directly,
    // and the run is deterministic.
    workerRun(0, opts_.base.budget);
  } else {
    // Workers share a stop flag; a monitor thread chains the *caller's*
    // budget (external interrupt / deadline) onto it, since installing
    // our flag on the worker copies overwrites any caller-installed
    // one (Budget copies share interrupt pointers — see sat/budget.h).
    Budget ext = opts_.base.budget;  // pristine copy: caller's signals
    std::atomic<bool> monitorDone{false};
    std::thread monitor;
    if (!ext.isUnlimited()) {
      monitor = std::thread([&] {
        while (!monitorDone.load(std::memory_order_acquire)) {
          if (ext.timeExpired()) {
            shared.stop.store(true, std::memory_order_release);
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }
    {
      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(n));
      for (int w = 0; w < n; ++w) {
        Budget b = opts_.base.budget;
        b.setInterrupt(&shared.stop);
        workers.emplace_back([&workerRun, w, b] { workerRun(w, b); });
      }
      for (std::thread& t : workers) t.join();
    }
    monitorDone.store(true, std::memory_order_release);
    if (monitor.joinable()) monitor.join();
  }

  last_steals_ = shared.steals.load(std::memory_order_relaxed);

  // Aggregate. Every decided cube is either pruned (cannot beat the
  // final incumbent) or hard-model-free; with all of them decided the
  // incumbent is the optimum — or, if no model was ever found, the
  // hard clauses are unsatisfiable (the cubes cover every hard-model).
  MaxSatResult merged;
  const Weight best = shared.best_cost.load(std::memory_order_acquire);
  const bool haveModel = best != kNoBound;
  const std::int64_t decided =
      shared.cubes_unsat.load(std::memory_order_relaxed) +
      shared.cubes_pruned.load(std::memory_order_relaxed);
  bool anyUnknown = false;
  for (const WorkerOut& out : outs) anyUnknown |= out.unknown;

  if (shared.early_optimum.load(std::memory_order_acquire) ||
      (!anyUnknown && decided == numCubes && haveModel)) {
    merged.status = MaxSatStatus::Optimum;
    merged.cost = best;
    merged.lowerBound = best;
    merged.upperBound = best;
    merged.model = std::move(shared.best_model);
  } else if (!anyUnknown && decided == numCubes) {
    assert(shared.cubes_pruned.load(std::memory_order_relaxed) == 0 &&
           "pruning requires an incumbent");
    merged.status = MaxSatStatus::UnsatisfiableHard;
    merged.upperBound = total;
  } else {
    merged.status = MaxSatStatus::Unknown;
    merged.lowerBound = 0;
    merged.upperBound = haveModel ? best : total;
    if (haveModel) merged.model = std::move(shared.best_model);
  }
  for (const WorkerOut& out : outs) {
    merged.iterations += out.iterations;
    merged.satCalls += out.sat_calls;
    merged.satStats += out.stats;
  }
  return merged;
}

}  // namespace msu
