/// \file worksteal.h
/// \brief A Chase–Lev work-stealing deque (fixed capacity) for the
///        cube-and-conquer scheduler: the owning worker pushes and pops
///        at the bottom in LIFO order, thieves take from the top in
///        FIFO order.
///
/// LIFO ownership keeps a worker on the most recently split, deepest —
/// and therefore most trail-prefix-similar — cubes, which is what makes
/// warm-started oracle calls pay off across sibling cubes; FIFO
/// stealing hands a thief the *oldest* (shallowest) item, the one
/// whose subtree is largest and the prefix least shared with the
/// victim's current work. This is the classic split from Chase & Lev,
/// "Dynamic Circular Work-Stealing Deque" (SPAA'05), minus the dynamic
/// growth: cube counts are known when the deque is built, so the
/// buffer is fixed and `push` simply fails when full.
///
/// Thread contract: `push`/`pop` only from the owning thread; `steal`
/// from any thread. All cross-thread traffic goes through atomics
/// (TSan-clean); the payload type must be trivially copyable.

#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>

namespace msu {

template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "payload is copied through atomic cells");

 public:
  /// Capacity is rounded up to a power of two; the deque never grows.
  explicit WorkStealingDeque(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    buf_ = std::make_unique<std::atomic<T>[]>(cap);
  }

  /// Owner-only. Returns false when the deque is full.
  bool push(T v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t > static_cast<std::int64_t>(mask_)) return false;
    buf_[static_cast<std::size_t>(b) & mask_].store(
        v, std::memory_order_relaxed);
    // Release the new bottom so a thief that reads it also sees the
    // element store above.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner-only: takes the most recently pushed item, racing thieves
  /// for the last one.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    // The fence orders the bottom decrement before the top read: a
    // concurrent thief either sees the decremented bottom (and gives
    // up) or loses the CAS race below — never both take the same item.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;  // already empty
    }
    T v = buf_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: win it against thieves by advancing top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;  // a thief got there first
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return v;
  }

  /// Any thread: takes the oldest item, or nullopt when empty or when
  /// it lost a race (callers treat both as "try elsewhere").
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    T v = buf_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost to the owner or another thief
    }
    return v;
  }

  /// Approximate size (racy; scheduling hint only).
  [[nodiscard]] std::int64_t sizeApprox() const {
    return bottom_.load(std::memory_order_relaxed) -
           top_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<std::atomic<T>[]> buf_;
  std::size_t mask_ = 0;
  // Padded apart: top is hammered by thieves, bottom by the owner.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace msu
