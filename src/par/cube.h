/// \file cube.h
/// \brief Cube-and-conquer MaxSAT: a lookahead splitter partitions one
///        hard instance into cubes (assumption prefixes over the
///        original variables), and workers conquer them over a
///        work-stealing scheduler with a shared incumbent.
///
/// The portfolio (par/portfolio.h) buys wall-clock time by *racing*
/// diversified engines on the whole instance; it helps latency but
/// every worker still walks the whole search space. Cube-and-conquer
/// is the complementary sharding story: split the space itself, solve
/// the pieces independently, and combine. For MaxSAT the combination
/// rule is branch-and-bound shaped:
///
///   opt(F) = min over cubes c of opt(F ∧ c),
///
/// valid because the cube set covers every model of the hard clauses
/// (the splitter branches both polarities of each chosen variable;
/// failed-literal assertions and pruned nodes are BCP-refutations over
/// the hard clauses, so they exclude no hard-model). Workers maintain
/// one global incumbent (cost + model). A cube that comes back UNSAT
/// under a bound constraint `cost <= UB-1` is *pruned*: its own
/// minimum is >= UB at prune time >= the final UB (the incumbent only
/// improves), so it cannot beat the final answer. A cube UNSAT with no
/// bound constraint has no hard-model at all; if every cube ends that
/// way and no model was ever found, the hard clauses are
/// unsatisfiable. Otherwise, once every cube is pruned or exhausted,
/// the incumbent is the optimum.
///
/// Each worker runs the wlinear engine pattern on one persistent
/// OracleSession — blocking variable per soft clause, scope-retired
/// `cost <= UB-1` constraint re-encoded as the incumbent improves —
/// and passes its current cube as extra assumptions. Sibling cubes
/// share long assumption prefixes, which the PR 5 warm-start contract
/// (reuse_trail) turns into nearly-free re-solves; the LIFO/FIFO split
/// of the work-stealing deque (par/worksteal.h) is chosen to maximise
/// exactly that prefix sharing. Workers also exchange learnt clauses
/// over the original-variable prefix through the same sharded pool the
/// portfolio uses — every worker loads identical hard clauses, keeps
/// blocking variables above the prefix and bound constraints
/// scope-guarded, so the par/clause_pool.h argument applies verbatim.
///
/// With one worker and a single root cube the solver *is* the base
/// engine (it delegates, bit for bit); with one worker and many cubes
/// it is a deterministic sequential cube loop (no threads, no atomics
/// on the hot path).

#pragma once

#include <string>
#include <vector>

#include "core/maxsat.h"
#include "encodings/pb.h"

namespace msu {

/// Tuning of the lookahead splitter.
struct CubeSplitOptions {
  /// Target number of leaf cubes; 0 = auto (8 per worker, min 16). The
  /// splitter stops branching once the target is reached; open sibling
  /// branches still emit one leaf each (coverage requires it), so the
  /// result can exceed the target by up to maxDepth cubes, and pruning
  /// can leave it below.
  int maxCubes = 0;
  /// Hard cap on cube length in decisions (splitting depth).
  int maxDepth = 12;
  /// Lookahead candidates probed per node (by occurrence count).
  int candidates = 8;
};

/// Output of the splitter. Cubes are emitted in DFS order, so
/// consecutive cubes are siblings sharing long prefixes.
struct CubeSplitResult {
  std::vector<std::vector<Lit>> cubes;
  /// BCP on the hard clauses refuted the root: the hard part is
  /// unsatisfiable outright and `cubes` is empty.
  bool rootConflict = false;
  std::int64_t failedLiterals = 0;  ///< single-polarity refutations
  std::int64_t prunedNodes = 0;     ///< both-polarity refutations
};

/// Splits `formula`'s hard clauses into covering cubes with a
/// counter-based BCP lookahead: candidates are ranked by occurrence,
/// each is probed in both polarities, failed literals are asserted,
/// both-failed nodes pruned, and the branch variable maximises the
/// product of propagation counts (favouring balanced, constrained
/// splits). Pure over the formula — exposed separately for tests.
[[nodiscard]] CubeSplitResult splitCubes(const WcnfFormula& formula,
                                         const CubeSplitOptions& opts);

/// Configuration of a CubeSolver.
struct CubeOptions {
  /// Options for every worker's oracle session (budget, encodings, ...).
  MaxSatOptions base;

  /// Number of conquering workers.
  int threads = 4;

  /// Splitter tuning (maxCubes = 0 scales with `threads`).
  CubeSplitOptions split;

  /// PB encoding of the weighted bound constraint (unweighted bounds
  /// use base.encoding), matching the wlinear engine's knob.
  PbEncoding pb = PbEncoding::Bdd;

  /// Inter-worker learnt-clause sharing over the original variables
  /// (same fabric and ceilings as the portfolio).
  bool shareClauses = true;
  int shareMaxSize = 8;
  int shareMaxLbd = 4;
};

/// The cube-and-conquer runner. Answer-correct for any thread count;
/// delegates to the base wlinear engine when splitting yields a single
/// root cube.
class CubeSolver final : public MaxSatSolver {
 public:
  explicit CubeSolver(CubeOptions options);

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

  /// Diagnostics of the last solve.
  [[nodiscard]] int lastNumCubes() const { return last_num_cubes_; }
  [[nodiscard]] std::int64_t lastSteals() const { return last_steals_; }

 private:
  CubeOptions opts_;
  int last_num_cubes_ = 0;
  std::int64_t last_steals_ = 0;
};

}  // namespace msu
