#include "mus/mus.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "core/core_trim.h"

namespace msu {

namespace {

/// Shared substrate: one selector per clause, `(C_i ∨ s_i)`; assuming
/// `¬s_i` enforces clause i. Keeps the solver (and everything it learns)
/// alive across the whole extraction.
class SelectorInstance {
 public:
  SelectorInstance(const CnfFormula& cnf, const Solver::Options& satOpts,
                   const Budget& budget)
      : cnf_(&cnf), solver_(satOpts) {
    solver_.setBudget(budget);
    for (Var v = 0; v < cnf.numVars(); ++v) {
      static_cast<void>(solver_.newVar());
    }
    selectors_.reserve(static_cast<std::size_t>(cnf.numClauses()));
    sel_of_var_.assign(static_cast<std::size_t>(cnf.numVars()), -1);
    for (int i = 0; i < cnf.numClauses(); ++i) {
      const Lit sel = posLit(solver_.newVar());
      selectors_.push_back(sel);
      sel_of_var_.push_back(i);
      Clause withSel = cnf.clause(i);
      withSel.push_back(sel);
      static_cast<void>(solver_.addClause(withSel));
    }
  }

  [[nodiscard]] Solver& solver() { return solver_; }
  [[nodiscard]] const CnfFormula& cnf() const { return *cnf_; }

  [[nodiscard]] Lit enforceLit(int clause) const {
    return ~selectors_[static_cast<std::size_t>(clause)];
  }

  /// Solves with exactly the clauses in `subset` enforced.
  [[nodiscard]] lbool solveSubset(std::span<const int> subset) {
    std::vector<Lit> assumptions;
    assumptions.reserve(subset.size());
    for (int i : subset) assumptions.push_back(enforceLit(i));
    ++sat_calls_;
    return solver_.solve(assumptions);
  }

  /// Maps the last failing-assumption core back to clause indices.
  [[nodiscard]] std::vector<int> coreIndices() const {
    std::vector<int> out;
    out.reserve(solver_.core().size());
    for (Lit p : solver_.core()) {
      const int idx = sel_of_var_[static_cast<std::size_t>(p.var())];
      assert(idx >= 0);
      out.push_back(idx);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Fixpoint-trims a failing clause subset via core_trim on the
  /// corresponding assumption literals.
  [[nodiscard]] std::vector<int> trimSubset(std::span<const int> subset,
                                            int rounds) {
    std::vector<Lit> assumptions;
    assumptions.reserve(subset.size());
    for (int i : subset) assumptions.push_back(enforceLit(i));
    CoreTrimOptions topts;
    topts.trimRounds = rounds;
    const std::vector<Lit> trimmed =
        trimCore(solver_, std::move(assumptions), topts);
    std::vector<int> out;
    out.reserve(trimmed.size());
    for (Lit p : trimmed) {
      out.push_back(sel_of_var_[static_cast<std::size_t>(p.var())]);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::int64_t satCalls() const { return sat_calls_; }

 private:
  const CnfFormula* cnf_;
  Solver solver_;
  std::vector<Lit> selectors_;
  std::vector<int> sel_of_var_;  // var -> clause index (-1: original var)
  std::int64_t sat_calls_ = 0;
};

/// Extracts the model over original variables from the solver.
[[nodiscard]] Assignment modelPrefix(const Solver& solver, int numVars) {
  Assignment a(static_cast<std::size_t>(numVars));
  for (Var v = 0; v < numVars; ++v) a[static_cast<std::size_t>(v)] =
      solver.model()[static_cast<std::size_t>(v)];
  return a;
}

/// Indices of `candidate` clauses falsified by `a`.
[[nodiscard]] std::vector<int> falsifiedAmong(const CnfFormula& cnf,
                                              std::span<const int> candidate,
                                              const Assignment& a) {
  std::vector<int> out;
  for (int i : candidate) {
    if (!cnf.clauseSatisfied(i, a)) out.push_back(i);
  }
  return out;
}

/// Recursive model rotation (Belov & Marques-Silva): `a` falsifies
/// exactly clause `seed` among `candidate`; flipping one variable of the
/// uniquely-falsified clause may make another clause uniquely falsified,
/// which is then also critical. Marks into `critical`.
void rotateModels(const CnfFormula& cnf, std::span<const int> candidate,
                  int seed, Assignment a, std::vector<char>& critical,
                  std::int64_t& marked) {
  struct Frame {
    int clause;
    Assignment assignment;
  };
  std::vector<Frame> stack;
  stack.push_back({seed, std::move(a)});
  while (!stack.empty()) {
    Frame fr = std::move(stack.back());
    stack.pop_back();
    for (const Lit p : cnf.clause(fr.clause)) {
      Assignment flipped = fr.assignment;
      auto& cell = flipped[static_cast<std::size_t>(p.var())];
      cell = ~cell;
      const std::vector<int> fals = falsifiedAmong(cnf, candidate, flipped);
      if (fals.size() == 1 &&
          critical[static_cast<std::size_t>(fals.front())] == 0) {
        critical[static_cast<std::size_t>(fals.front())] = 1;
        ++marked;
        stack.push_back({fals.front(), std::move(flipped)});
      }
    }
  }
}

[[nodiscard]] MusResult finish(SelectorInstance& inst, std::vector<int> set,
                               bool minimal, std::int64_t rotated) {
  MusResult r;
  std::sort(set.begin(), set.end());
  r.clauseIndices = std::move(set);
  r.minimal = minimal;
  r.satCalls = inst.satCalls();
  r.rotationCriticals = rotated;
  return r;
}

/// Initial unsatisfiable core (trimmed), or nullopt when the formula is
/// satisfiable / the budget expired.
[[nodiscard]] std::optional<std::vector<int>> initialCore(
    SelectorInstance& inst, const MusOptions& options) {
  std::vector<int> all(static_cast<std::size_t>(inst.cnf().numClauses()));
  for (int i = 0; i < inst.cnf().numClauses(); ++i)
    all[static_cast<std::size_t>(i)] = i;
  const lbool st = inst.solveSubset(all);
  if (st != lbool::False) return std::nullopt;
  std::vector<int> core = inst.coreIndices();
  if (options.trimRounds > 0) {
    core = inst.trimSubset(core, options.trimRounds);
  }
  return core;
}

}  // namespace

MusResult extractMusDeletion(const CnfFormula& cnf,
                             const MusOptions& options) {
  SelectorInstance inst(cnf, options.sat, options.budget);
  auto seed = initialCore(inst, options);
  if (!seed) return MusResult{{}, false, inst.satCalls(), 0};

  std::vector<int> candidate = std::move(*seed);
  std::vector<char> critical(static_cast<std::size_t>(cnf.numClauses()), 0);
  std::int64_t rotated = 0;

  // Invariant: `candidate` is unsatisfiable; clauses marked critical
  // belong to every MUS inside it.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t pos = 0; pos < candidate.size(); ++pos) {
      const int i = candidate[pos];
      if (critical[static_cast<std::size_t>(i)] != 0) continue;

      std::vector<int> test;
      test.reserve(candidate.size() - 1);
      for (int j : candidate) {
        if (j != i) test.push_back(j);
      }
      const lbool st = inst.solveSubset(test);
      if (st == lbool::Undef) {
        return finish(inst, std::move(candidate), false, rotated);
      }
      if (st == lbool::False) {
        // Clause-set refinement: adopt the (usually much smaller) core.
        candidate = inst.coreIndices();
        progressed = true;
        break;  // restart the scan over the refined candidate
      }
      // SAT: `i` is a transition clause — critical. The model falsifies
      // exactly `i` among `candidate`, the precondition for rotation.
      critical[static_cast<std::size_t>(i)] = 1;
      if (options.modelRotation) {
        const Assignment a = modelPrefix(inst.solver(), cnf.numVars());
        rotateModels(cnf, candidate, i, a, critical, rotated);
      }
    }
  }
  return finish(inst, std::move(candidate), true, rotated);
}

namespace {

/// QuickXplain recursion. Precondition: background ∪ candidates is
/// unsatisfiable. Returns a minimal subset M of `candidates` with
/// background ∪ M unsatisfiable, or nullopt on budget expiry.
[[nodiscard]] std::optional<std::vector<int>> quickXplain(
    SelectorInstance& inst, std::vector<int>& background,
    std::span<const int> candidates, bool backgroundChanged) {
  if (backgroundChanged && !candidates.empty()) {
    const lbool st = inst.solveSubset(background);
    if (st == lbool::Undef) return std::nullopt;
    if (st == lbool::False) return std::vector<int>{};
  }
  if (candidates.empty()) return std::vector<int>{};
  if (candidates.size() == 1) {
    return std::vector<int>{candidates.front()};
  }
  const std::size_t half = candidates.size() / 2;
  const std::span<const int> d1 = candidates.subspan(0, half);
  const std::span<const int> d2 = candidates.subspan(half);

  // M2 = qx(B ∪ D1, D2)
  const std::size_t mark1 = background.size();
  background.insert(background.end(), d1.begin(), d1.end());
  auto m2 = quickXplain(inst, background, d2, /*backgroundChanged=*/true);
  background.resize(mark1);
  if (!m2) return std::nullopt;

  // M1 = qx(B ∪ M2, D1)
  const std::size_t mark2 = background.size();
  background.insert(background.end(), m2->begin(), m2->end());
  auto m1 = quickXplain(inst, background, d1,
                        /*backgroundChanged=*/!m2->empty());
  background.resize(mark2);
  if (!m1) return std::nullopt;

  m1->insert(m1->end(), m2->begin(), m2->end());
  return m1;
}

}  // namespace

MusResult extractMusDichotomic(const CnfFormula& cnf,
                               const MusOptions& options) {
  SelectorInstance inst(cnf, options.sat, options.budget);
  auto seed = initialCore(inst, options);
  if (!seed) return MusResult{{}, false, inst.satCalls(), 0};

  std::vector<int> background;
  auto mus = quickXplain(inst, background, *seed,
                         /*backgroundChanged=*/false);
  if (!mus) return finish(inst, std::move(*seed), false, 0);
  return finish(inst, std::move(*mus), true, 0);
}

MusResult extractMusInsertion(const CnfFormula& cnf,
                              const MusOptions& options) {
  SelectorInstance inst(cnf, options.sat, options.budget);
  auto seed = initialCore(inst, options);
  if (!seed) return MusResult{{}, false, inst.satCalls(), 0};

  // Work inside the seed core only; `mus` grows one transition clause
  // per outer iteration, `pool` shrinks to the prefix that tipped over.
  std::vector<int> pool = std::move(*seed);
  std::vector<int> mus;
  while (true) {
    {
      const lbool st = inst.solveSubset(mus);
      if (st == lbool::Undef) {
        // `pool` is still unsatisfiable and contains mus.
        return finish(inst, std::move(pool), false, 0);
      }
      if (st == lbool::False) break;  // mus itself unsatisfiable: done
    }
    std::vector<int> prefix = mus;
    bool tipped = false;
    for (int c : pool) {
      if (std::find(mus.begin(), mus.end(), c) != mus.end()) continue;
      prefix.push_back(c);
      const lbool st = inst.solveSubset(prefix);
      if (st == lbool::Undef) {
        return finish(inst, std::move(pool), false, 0);
      }
      if (st == lbool::False) {
        mus.push_back(c);    // transition clause is in every MUS of prefix
        pool = std::move(prefix);  // restrict future work to the prefix
        tipped = true;
        break;
      }
    }
    if (!tipped) {
      // pool ∪ mus satisfiable — cannot happen when pool is unsat.
      assert(false && "insertion scan failed to tip over");
      return finish(inst, std::move(pool), false, 0);
    }
  }
  return finish(inst, std::move(mus), true, 0);
}

bool subsetUnsat(const CnfFormula& cnf, std::span<const int> clauseIndices,
                 const Budget& budget) {
  Solver solver;
  solver.setBudget(budget);
  for (Var v = 0; v < cnf.numVars(); ++v) static_cast<void>(solver.newVar());
  for (int i : clauseIndices) {
    if (!solver.addClause(cnf.clause(i))) return true;
  }
  return solver.solve() == lbool::False;
}

bool isMus(const CnfFormula& cnf, std::span<const int> clauseIndices,
           const Budget& budget) {
  if (!subsetUnsat(cnf, clauseIndices, budget)) return false;
  std::vector<int> test;
  for (std::size_t skip = 0; skip < clauseIndices.size(); ++skip) {
    test.clear();
    for (std::size_t j = 0; j < clauseIndices.size(); ++j) {
      if (j != skip) test.push_back(clauseIndices[j]);
    }
    if (subsetUnsat(cnf, test, budget)) return false;
  }
  return true;
}

}  // namespace msu
