/// \file mus.h
/// \brief Minimal Unsatisfiable Subformula (MUS) extraction. The DATE'08
///        paper builds msu4 on the relationship between unsatisfiable
///        cores and MaxSAT (§2.3, citing Kullmann, de la Banda et al. and
///        Liffiton & Sakallah); this module implements the core-based
///        side of that relationship as a first-class library feature.
///
/// Three extractors over plain CNF formulas, all driven by the same
/// assumption-based CDCL substrate the MaxSAT engines use:
///  * deletion-based — linear SAT calls, clause-set refinement from each
///    UNSAT core, and recursive model rotation on each SAT answer
///    (Belov & Marques-Silva), typically far fewer calls than clauses;
///  * dichotomic — the QuickXplain divide-and-conquer scheme,
///    O(|MUS| log n) SAT calls, best when the MUS is small;
///  * insertion-based — repeatedly grows a satisfiable prefix until it
///    tips over; simple, and a useful differential-testing partner.
///
/// Every extractor returns a set of clause indices that is unsatisfiable
/// on completion and *minimal* (every proper subset satisfiable) unless
/// the budget ran out first.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cnf/formula.h"
#include "sat/budget.h"
#include "sat/solver.h"

namespace msu {

/// Options shared by the MUS extractors.
struct MusOptions {
  /// Cooperative budget across all SAT calls of one extraction.
  Budget budget;

  /// Fixpoint core-trimming rounds applied to the initial core before
  /// minimization starts (deletion/dichotomic extractors).
  int trimRounds = 4;

  /// Deletion extractor: propagate criticality through model rotation
  /// (flip one variable of the transition clause, re-mark clauses that
  /// become uniquely falsified). Saves SAT calls on structured inputs.
  bool modelRotation = true;

  /// Underlying CDCL parameters.
  Solver::Options sat;
};

/// Result of a MUS extraction.
struct MusResult {
  /// Clause indices into the input formula, sorted ascending. An
  /// unsatisfiable subset; minimal iff `minimal` is true.
  std::vector<int> clauseIndices;

  /// True iff minimality was established (budget did not expire).
  bool minimal = false;

  /// Diagnostics.
  std::int64_t satCalls = 0;           ///< SAT solver invocations
  std::int64_t rotationCriticals = 0;  ///< clauses marked by rotation alone

  [[nodiscard]] int size() const {
    return static_cast<int>(clauseIndices.size());
  }
};

/// Deletion-based extraction with clause-set refinement and model
/// rotation. Precondition: `cnf` is unsatisfiable (otherwise returns an
/// empty, non-minimal result).
[[nodiscard]] MusResult extractMusDeletion(const CnfFormula& cnf,
                                           const MusOptions& options = {});

/// Dichotomic (QuickXplain-style) extraction.
[[nodiscard]] MusResult extractMusDichotomic(const CnfFormula& cnf,
                                             const MusOptions& options = {});

/// Insertion-based extraction.
[[nodiscard]] MusResult extractMusInsertion(const CnfFormula& cnf,
                                            const MusOptions& options = {});

/// True iff the subset (indices into `cnf.clauses()`) is unsatisfiable,
/// decided with a CDCL solve under the given budget; `false` also when
/// the budget expires.
[[nodiscard]] bool subsetUnsat(const CnfFormula& cnf,
                               std::span<const int> clauseIndices,
                               const Budget& budget = {});

/// True iff `clauseIndices` is a MUS of `cnf`: unsatisfiable and every
/// proper subset obtained by dropping one clause satisfiable. Cost is
/// |subset|+1 SAT calls — intended for tests and assertions.
[[nodiscard]] bool isMus(const CnfFormula& cnf,
                         std::span<const int> clauseIndices,
                         const Budget& budget = {});

}  // namespace msu
