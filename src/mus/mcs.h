/// \file mcs.h
/// \brief Minimal Correction Set (MCS) enumeration and the MCS/MUS
///        hitting-set duality (Reiter; Liffiton & Sakallah's CAMUS).
///
/// An MCS of an unsatisfiable CNF is a minimal set of clauses whose
/// removal restores satisfiability; its complement is a maximal
/// satisfiable subformula (MSS). The duality the DATE'08 paper's §2.3
/// leans on is made executable here:
///  * the smallest MCS size equals the optimum MaxSAT *cost* —
///    Proposition 2's lower bound is tight exactly at an MCS;
///  * MUSes are precisely the minimal hitting sets of the MCS
///    collection, and vice versa.
///
/// Enumeration instruments every clause with a falsification indicator
/// `b_i ↔ ¬C_i` and sweeps cardinality levels `sum(b) <= k` for
/// k = 0, 1, 2, ...; each model found is an MCS (all smaller correction
/// sets are already blocked, so candidates at level k are minimal), and
/// each MCS is excluded by a blocking clause before the sweep continues.

#pragma once

#include <cstdint>
#include <vector>

#include "cnf/formula.h"
#include "encodings/cardinality.h"
#include "sat/budget.h"
#include "sat/solver.h"

namespace msu {

/// Options for MCS enumeration.
struct McsOptions {
  /// Cooperative budget across all SAT calls.
  Budget budget;

  /// Stop after this many MCSes even if more exist (0 = no cap).
  int maxCount = 0;

  /// Only enumerate MCSes of size <= maxSize (0 = no cap). The output is
  /// then the complete collection of small MCSes, which still suffices
  /// to certify the MaxSAT optimum when any MCS is found.
  int maxSize = 0;

  /// Cardinality encoding for the level constraint.
  CardEncoding encoding = CardEncoding::Totalizer;

  /// Underlying CDCL parameters.
  Solver::Options sat;
};

/// Result of MCS enumeration.
struct McsResult {
  /// Each MCS as a sorted list of clause indices; enumerated in
  /// non-decreasing size order.
  std::vector<std::vector<int>> mcses;

  /// True iff the collection is provably exhaustive (no budget/cap hit).
  bool complete = false;

  /// Diagnostics.
  std::int64_t satCalls = 0;

  /// Size of the smallest MCS (== optimum MaxSAT cost), or -1 when none
  /// was found. The input being unsatisfiable guarantees >= 1.
  [[nodiscard]] int minSize() const {
    return mcses.empty() ? -1 : static_cast<int>(mcses.front().size());
  }
};

/// Enumerates MCSes of `cnf` in non-decreasing size order.
/// Satisfiable inputs yield an empty, complete collection.
[[nodiscard]] McsResult enumerateMcses(const CnfFormula& cnf,
                                       const McsOptions& options = {});

/// All minimal hitting sets of `sets` over non-negative int elements,
/// capped at `maxCount` results (0 = no cap). Exponential in general —
/// intended for the CAMUS-style second stage on small collections.
[[nodiscard]] std::vector<std::vector<int>> minimalHittingSets(
    const std::vector<std::vector<int>>& sets, int maxCount = 0);

/// Result of full MUS enumeration.
struct AllMusesResult {
  std::vector<std::vector<int>> muses;  ///< each sorted ascending
  bool complete = false;                ///< MCS stage was exhaustive
  std::int64_t satCalls = 0;
};

/// CAMUS-style enumeration of all MUSes: enumerate all MCSes, then
/// compute their minimal hitting sets. Exponential; small inputs only.
[[nodiscard]] AllMusesResult enumerateAllMuses(const CnfFormula& cnf,
                                               const McsOptions& options = {});

}  // namespace msu
