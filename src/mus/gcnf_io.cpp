#include "mus/gcnf_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace msu {

GroupCnf readGcnf(std::istream& in) {
  GroupCnf gcnf;
  int declaredVars = 0;
  int declaredGroups = 0;
  bool sawHeader = false;

  std::string line;
  Clause current;
  int currentGroup = -2;  // -2: expecting a "{g}" tag next
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tok;
    while (ls >> tok) {
      if (tok == "c") break;  // comment: rest of line
      if (tok == "p") {
        std::string fmt;
        int clauses = 0;
        if (!(ls >> fmt >> declaredVars >> clauses >> declaredGroups) ||
            fmt != "gcnf" || declaredVars < 0 || declaredGroups < 0) {
          throw GcnfError("bad problem line");
        }
        sawHeader = true;
        gcnf.ensureVars(declaredVars);
        for (int g = 0; g < declaredGroups; ++g) {
          static_cast<void>(gcnf.addGroup());
        }
        break;
      }
      if (!sawHeader) throw GcnfError("clause before problem line");
      if (currentGroup == -2) {
        if (tok.size() < 3 || tok.front() != '{' || tok.back() != '}') {
          throw GcnfError("expected group tag, got: " + tok);
        }
        try {
          std::size_t pos = 0;
          const std::string body = tok.substr(1, tok.size() - 2);
          currentGroup = std::stoi(body, &pos);
          if (pos != body.size()) throw GcnfError("bad group tag: " + tok);
        } catch (const GcnfError&) {
          throw;
        } catch (...) {
          throw GcnfError("bad group tag: " + tok);
        }
        if (currentGroup < 0 || currentGroup > declaredGroups) {
          throw GcnfError("group id out of range: " + tok);
        }
        continue;
      }
      std::int64_t value = 0;
      try {
        std::size_t pos = 0;
        value = std::stoll(tok, &pos);
        if (pos != tok.size()) throw GcnfError("bad literal: " + tok);
      } catch (const GcnfError&) {
        throw;
      } catch (...) {
        throw GcnfError("bad literal: " + tok);
      }
      if (value == 0) {
        if (currentGroup == 0) {
          gcnf.addBackground(current);
        } else {
          gcnf.addToGroup(currentGroup - 1, current);
        }
        current.clear();
        currentGroup = -2;
      } else {
        if (std::abs(value) > declaredVars) {
          throw GcnfError("literal out of range: " + tok);
        }
        current.push_back(Lit::fromDimacs(static_cast<std::int32_t>(value)));
      }
    }
  }
  if (currentGroup != -2 || !current.empty()) {
    throw GcnfError("truncated final clause");
  }
  if (!sawHeader) throw GcnfError("missing problem line");
  return gcnf;
}

GroupCnf parseGcnf(const std::string& text) {
  std::istringstream in(text);
  return readGcnf(in);
}

void writeGcnf(std::ostream& out, const GroupCnf& gcnf) {
  int numClauses = static_cast<int>(gcnf.background().size());
  for (int g = 0; g < gcnf.numGroups(); ++g) {
    numClauses += static_cast<int>(gcnf.group(g).size());
  }
  out << "p gcnf " << gcnf.numVars() << ' ' << numClauses << ' '
      << gcnf.numGroups() << '\n';
  const auto emit = [&out](int tag, const Clause& c) {
    out << '{' << tag << '}';
    for (const Lit p : c) out << ' ' << p.toDimacs();
    out << " 0\n";
  };
  for (const Clause& c : gcnf.background()) emit(0, c);
  for (int g = 0; g < gcnf.numGroups(); ++g) {
    for (const Clause& c : gcnf.group(g)) emit(g + 1, c);
  }
}

}  // namespace msu
