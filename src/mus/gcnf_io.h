/// \file gcnf_io.h
/// \brief Reader/writer for the GCNF group-CNF interchange format used
///        by the group-MUS track of the MUS competitions:
///
///        p gcnf <vars> <clauses> <groups>
///        {0} <lits> 0        — background (group 0) clause
///        {g} <lits> 0        — clause of group g (1-based)
///
/// Internally groups are 0-based (`GroupCnf` group ids); the format's
/// group 0 maps to the background and format group g to id g-1.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "mus/gmus.h"

namespace msu {

/// Error raised on malformed GCNF input.
class GcnfError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a GCNF stream. Throws GcnfError on malformed input.
[[nodiscard]] GroupCnf readGcnf(std::istream& in);

/// Parses a GCNF string.
[[nodiscard]] GroupCnf parseGcnf(const std::string& text);

/// Writes a GroupCnf in GCNF syntax.
void writeGcnf(std::ostream& out, const GroupCnf& gcnf);

}  // namespace msu
