#include "mus/gmus.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "core/core_trim.h"
#include "sat/solver.h"

namespace msu {

void GroupCnf::addBackground(std::span<const Lit> lits) {
  Clause c(lits.begin(), lits.end());
  for (const Lit p : c) ensureVars(p.var() + 1);
  background_.push_back(std::move(c));
}

void GroupCnf::addToGroup(int g, std::span<const Lit> lits) {
  assert(g >= 0 && g < numGroups());
  Clause c(lits.begin(), lits.end());
  for (const Lit p : c) ensureVars(p.var() + 1);
  groups_[static_cast<std::size_t>(g)].push_back(std::move(c));
}

namespace {

/// One selector per *group*: every clause of group g becomes
/// `(C ∨ s_g)`; assuming `¬s_g` enforces the whole group.
class GroupInstance {
 public:
  GroupInstance(const GroupCnf& gcnf, const Solver::Options& satOpts,
                const Budget& budget)
      : solver_(satOpts) {
    solver_.setBudget(budget);
    for (Var v = 0; v < gcnf.numVars(); ++v) {
      static_cast<void>(solver_.newVar());
    }
    for (const Clause& c : gcnf.background()) {
      static_cast<void>(solver_.addClause(c));
    }
    selectors_.reserve(static_cast<std::size_t>(gcnf.numGroups()));
    sel_of_var_.assign(static_cast<std::size_t>(gcnf.numVars()), -1);
    for (int g = 0; g < gcnf.numGroups(); ++g) {
      const Lit sel = posLit(solver_.newVar());
      selectors_.push_back(sel);
      sel_of_var_.push_back(g);
      for (const Clause& c : gcnf.group(g)) {
        Clause withSel = c;
        withSel.push_back(sel);
        static_cast<void>(solver_.addClause(withSel));
      }
    }
  }

  [[nodiscard]] Solver& solver() { return solver_; }

  [[nodiscard]] Lit enforceLit(int g) const {
    return ~selectors_[static_cast<std::size_t>(g)];
  }

  [[nodiscard]] lbool solveGroups(std::span<const int> groups) {
    std::vector<Lit> assumptions;
    assumptions.reserve(groups.size());
    for (int g : groups) assumptions.push_back(enforceLit(g));
    ++sat_calls_;
    return solver_.solve(assumptions);
  }

  [[nodiscard]] std::vector<int> coreGroups() const {
    std::vector<int> out;
    out.reserve(solver_.core().size());
    for (const Lit p : solver_.core()) {
      const int g = sel_of_var_[static_cast<std::size_t>(p.var())];
      assert(g >= 0);
      out.push_back(g);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::vector<int> trimGroups(std::span<const int> groups,
                                            int rounds) {
    std::vector<Lit> assumptions;
    assumptions.reserve(groups.size());
    for (int g : groups) assumptions.push_back(enforceLit(g));
    CoreTrimOptions topts;
    topts.trimRounds = rounds;
    const std::vector<Lit> trimmed =
        trimCore(solver_, std::move(assumptions), topts);
    std::vector<int> out;
    out.reserve(trimmed.size());
    for (const Lit p : trimmed) {
      out.push_back(sel_of_var_[static_cast<std::size_t>(p.var())]);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::int64_t satCalls() const { return sat_calls_; }

 private:
  Solver solver_;
  std::vector<Lit> selectors_;
  std::vector<int> sel_of_var_;
  std::int64_t sat_calls_ = 0;
};

[[nodiscard]] GroupMusResult finish(GroupInstance& inst, std::vector<int> set,
                                    bool minimal) {
  GroupMusResult r;
  std::sort(set.begin(), set.end());
  r.groups = std::move(set);
  r.minimal = minimal;
  r.satCalls = inst.satCalls();
  return r;
}

/// Initial failing group set: nullopt when satisfiable or budget-dead;
/// an empty vector when the background alone is unsatisfiable.
[[nodiscard]] std::optional<std::vector<int>> initialGroups(
    GroupInstance& inst, int numGroups, const MusOptions& options) {
  std::vector<int> all(static_cast<std::size_t>(numGroups));
  for (int g = 0; g < numGroups; ++g) all[static_cast<std::size_t>(g)] = g;
  const lbool st = inst.solveGroups(all);
  if (st != lbool::False) return std::nullopt;
  std::vector<int> core = inst.coreGroups();
  if (options.trimRounds > 0 && !core.empty()) {
    core = inst.trimGroups(core, options.trimRounds);
  }
  return core;
}

}  // namespace

GroupMusResult extractGroupMusDeletion(const GroupCnf& gcnf,
                                       const MusOptions& options) {
  GroupInstance inst(gcnf, options.sat, options.budget);
  auto seed = initialGroups(inst, gcnf.numGroups(), options);
  if (!seed) return GroupMusResult{{}, false, inst.satCalls()};

  std::vector<int> candidate = std::move(*seed);
  std::vector<char> critical(static_cast<std::size_t>(gcnf.numGroups()), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t pos = 0; pos < candidate.size(); ++pos) {
      const int g = candidate[pos];
      if (critical[static_cast<std::size_t>(g)] != 0) continue;
      std::vector<int> test;
      test.reserve(candidate.size() - 1);
      for (int other : candidate) {
        if (other != g) test.push_back(other);
      }
      const lbool st = inst.solveGroups(test);
      if (st == lbool::Undef) {
        return finish(inst, std::move(candidate), false);
      }
      if (st == lbool::False) {
        candidate = inst.coreGroups();  // group-set refinement
        progressed = true;
        break;
      }
      critical[static_cast<std::size_t>(g)] = 1;
    }
  }
  return finish(inst, std::move(candidate), true);
}

namespace {

[[nodiscard]] std::optional<std::vector<int>> quickXplainGroups(
    GroupInstance& inst, std::vector<int>& background,
    std::span<const int> candidates, bool backgroundChanged) {
  if (backgroundChanged && !candidates.empty()) {
    const lbool st = inst.solveGroups(background);
    if (st == lbool::Undef) return std::nullopt;
    if (st == lbool::False) return std::vector<int>{};
  }
  if (candidates.empty()) return std::vector<int>{};
  if (candidates.size() == 1) return std::vector<int>{candidates.front()};
  const std::size_t half = candidates.size() / 2;
  const std::span<const int> d1 = candidates.subspan(0, half);
  const std::span<const int> d2 = candidates.subspan(half);

  const std::size_t mark1 = background.size();
  background.insert(background.end(), d1.begin(), d1.end());
  auto m2 = quickXplainGroups(inst, background, d2, true);
  background.resize(mark1);
  if (!m2) return std::nullopt;

  const std::size_t mark2 = background.size();
  background.insert(background.end(), m2->begin(), m2->end());
  auto m1 = quickXplainGroups(inst, background, d1, !m2->empty());
  background.resize(mark2);
  if (!m1) return std::nullopt;

  m1->insert(m1->end(), m2->begin(), m2->end());
  return m1;
}

}  // namespace

GroupMusResult extractGroupMusDichotomic(const GroupCnf& gcnf,
                                         const MusOptions& options) {
  GroupInstance inst(gcnf, options.sat, options.budget);
  auto seed = initialGroups(inst, gcnf.numGroups(), options);
  if (!seed) return GroupMusResult{{}, false, inst.satCalls()};

  std::vector<int> background;
  auto mus = quickXplainGroups(inst, background, *seed, false);
  if (!mus) return finish(inst, std::move(*seed), false);
  return finish(inst, std::move(*mus), true);
}

bool groupSubsetUnsat(const GroupCnf& gcnf, std::span<const int> groups,
                      const Budget& budget) {
  Solver solver;
  solver.setBudget(budget);
  for (Var v = 0; v < gcnf.numVars(); ++v) static_cast<void>(solver.newVar());
  for (const Clause& c : gcnf.background()) {
    if (!solver.addClause(c)) return true;
  }
  for (int g : groups) {
    for (const Clause& c : gcnf.group(g)) {
      if (!solver.addClause(c)) return true;
    }
  }
  return solver.solve() == lbool::False;
}

bool isGroupMus(const GroupCnf& gcnf, std::span<const int> groups,
                const Budget& budget) {
  if (!groupSubsetUnsat(gcnf, groups, budget)) return false;
  std::vector<int> test;
  for (std::size_t skip = 0; skip < groups.size(); ++skip) {
    test.clear();
    for (std::size_t j = 0; j < groups.size(); ++j) {
      if (j != skip) test.push_back(groups[j]);
    }
    if (groupSubsetUnsat(gcnf, test, budget)) return false;
  }
  return true;
}

}  // namespace msu
