#include "mus/mcs.h"

#include <algorithm>
#include <cassert>

#include "core/incremental_atmost.h"
#include "encodings/sink.h"

namespace msu {

namespace {

/// True iff `a` (sorted) is a superset of `b` (sorted).
[[nodiscard]] bool supersetOf(const std::vector<int>& a,
                              const std::vector<int>& b) {
  return std::includes(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

McsResult enumerateMcses(const CnfFormula& cnf, const McsOptions& options) {
  McsResult result;
  Solver solver(options.sat);
  solver.setBudget(options.budget);
  for (Var v = 0; v < cnf.numVars(); ++v) static_cast<void>(solver.newVar());

  // Falsification indicators: b_i <-> ¬C_i, so every model's b-set is
  // exactly the set of falsified clauses.
  const int m = cnf.numClauses();
  std::vector<Lit> indicators;
  indicators.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const Lit b = posLit(solver.newVar());
    indicators.push_back(b);
    Clause relaxed = cnf.clause(i);
    relaxed.push_back(b);
    static_cast<void>(solver.addClause(relaxed));
    for (const Lit p : cnf.clause(i)) {
      static_cast<void>(solver.addClause({~b, ~p}));
    }
  }

  SolverSink sink(solver);
  AssumableAtMost bound(sink, indicators, options.encoding);

  const int kMax = options.maxSize > 0 ? std::min(options.maxSize, m) : m;
  for (int k = 0; k <= kMax; ++k) {
    const std::optional<Lit> boundLit = bound.boundLit(k);
    while (true) {
      std::vector<Lit> assumptions;
      if (boundLit) assumptions.push_back(*boundLit);
      ++result.satCalls;
      const lbool st = solver.solve(assumptions);
      if (st == lbool::Undef) return result;  // budget: incomplete
      if (st == lbool::False) break;          // level k exhausted

      std::vector<int> mcs;
      for (int i = 0; i < m; ++i) {
        if (solver.modelValue(indicators[static_cast<std::size_t>(i)]) ==
            lbool::True) {
          mcs.push_back(i);
        }
      }
      if (mcs.empty()) {
        // The formula itself is satisfiable: no correction needed.
        result.complete = true;
        return result;
      }
      // Block this MCS and every superset: some member must be satisfied.
      Clause blocking;
      blocking.reserve(mcs.size());
      for (int i : mcs) {
        blocking.push_back(~indicators[static_cast<std::size_t>(i)]);
      }
      static_cast<void>(solver.addClause(blocking));
      result.mcses.push_back(std::move(mcs));
      if (options.maxCount > 0 &&
          static_cast<int>(result.mcses.size()) >= options.maxCount) {
        return result;  // capped: incomplete
      }
    }
    // All correction sets of size <= k are now blocked. If the blockers
    // alone are unsatisfiable, the collection is exhaustive.
    ++result.satCalls;
    const lbool st = solver.solve();
    if (st == lbool::Undef) return result;
    if (st == lbool::False) {
      result.complete = true;
      return result;
    }
  }
  return result;  // size cap reached with larger MCSes remaining
}

namespace {

void hittingSetsRec(const std::vector<std::vector<int>>& sets,
                    std::vector<int>& chosen,
                    std::vector<std::vector<int>>& out, int maxCount) {
  if (maxCount > 0 && static_cast<int>(out.size()) >= maxCount) return;

  // Prune: a strict extension of an already-found hitting set can never
  // be minimal.
  {
    std::vector<int> sortedChosen = chosen;
    std::sort(sortedChosen.begin(), sortedChosen.end());
    for (const auto& found : out) {
      if (supersetOf(sortedChosen, found)) return;
    }
  }

  // First set not hit by `chosen`.
  const std::vector<int>* unhit = nullptr;
  for (const auto& s : sets) {
    bool hit = false;
    for (int e : s) {
      if (std::find(chosen.begin(), chosen.end(), e) != chosen.end()) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      unhit = &s;
      break;
    }
  }

  if (unhit == nullptr) {
    // Hitting set; keep it only if minimal: every chosen element must be
    // the sole hitter of some set.
    for (int e : chosen) {
      bool witnessed = false;
      for (const auto& s : sets) {
        bool eHits = false;
        bool otherHits = false;
        for (int x : s) {
          if (x == e) {
            eHits = true;
          } else if (std::find(chosen.begin(), chosen.end(), x) !=
                     chosen.end()) {
            otherHits = true;
          }
        }
        if (eHits && !otherHits) {
          witnessed = true;
          break;
        }
      }
      if (!witnessed) return;  // redundant element: not minimal
    }
    std::vector<int> sorted = chosen;
    std::sort(sorted.begin(), sorted.end());
    if (std::find(out.begin(), out.end(), sorted) == out.end()) {
      out.push_back(std::move(sorted));
    }
    return;
  }

  for (int e : *unhit) {
    if (std::find(chosen.begin(), chosen.end(), e) != chosen.end()) continue;
    chosen.push_back(e);
    hittingSetsRec(sets, chosen, out, maxCount);
    chosen.pop_back();
  }
}

}  // namespace

std::vector<std::vector<int>> minimalHittingSets(
    const std::vector<std::vector<int>>& sets, int maxCount) {
  for (const auto& s : sets) {
    if (s.empty()) return {};  // an empty set cannot be hit
  }
  std::vector<std::vector<int>> out;
  std::vector<int> chosen;
  hittingSetsRec(sets, chosen, out, maxCount);
  std::sort(out.begin(), out.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  return out;
}

AllMusesResult enumerateAllMuses(const CnfFormula& cnf,
                                 const McsOptions& options) {
  AllMusesResult result;
  const McsResult mcses = enumerateMcses(cnf, options);
  result.satCalls = mcses.satCalls;
  result.complete = mcses.complete;
  if (!mcses.complete) {
    // Hitting sets of a partial MCS collection are not MUSes; report
    // nothing rather than unsound candidates.
    return result;
  }
  result.muses = minimalHittingSets(mcses.mcses, options.maxCount);
  return result;
}

}  // namespace msu
