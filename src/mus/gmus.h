/// \file gmus.h
/// \brief Group-oriented MUS extraction. In the design-debugging flow
///        that motivates the paper (Safarpour et al. [24]), clauses come
///        in *groups* — all CNF clauses of one gate, one assertion, one
///        constraint block — and the question is which *groups* form a
///        minimal conflict. A group MUS is a minimal set of groups whose
///        union with the background (always-on clauses) is
///        unsatisfiable.
///
/// Implementation mirrors the clause-level extractors in mus.h with one
/// selector per group: deletion-based with group-set refinement, and
/// dichotomic (QuickXplain) extraction.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cnf/formula.h"
#include "mus/mus.h"

namespace msu {

/// A CNF formula partitioned into background clauses (always enforced)
/// and numbered clause groups (the units of minimization).
class GroupCnf {
 public:
  GroupCnf() = default;
  explicit GroupCnf(int numVars) : num_vars_(numVars) {}

  [[nodiscard]] int numVars() const { return num_vars_; }
  [[nodiscard]] int numGroups() const {
    return static_cast<int>(groups_.size());
  }

  Var newVar() { return num_vars_++; }
  void ensureVars(int n) {
    if (n > num_vars_) num_vars_ = n;
  }

  /// Adds a clause to the background (never a candidate for removal).
  void addBackground(std::span<const Lit> lits);
  void addBackground(std::initializer_list<Lit> lits) {
    addBackground(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// Creates a new empty group, returning its id.
  int addGroup() {
    groups_.emplace_back();
    return numGroups() - 1;
  }

  /// Adds a clause to group `g`.
  void addToGroup(int g, std::span<const Lit> lits);
  void addToGroup(int g, std::initializer_list<Lit> lits) {
    addToGroup(g, std::span<const Lit>(lits.begin(), lits.size()));
  }

  [[nodiscard]] const std::vector<Clause>& background() const {
    return background_;
  }
  [[nodiscard]] const std::vector<Clause>& group(int g) const {
    return groups_[static_cast<std::size_t>(g)];
  }

 private:
  int num_vars_ = 0;
  std::vector<Clause> background_;
  std::vector<std::vector<Clause>> groups_;
};

/// Result of a group-MUS extraction.
struct GroupMusResult {
  /// Group ids, sorted ascending; with the background jointly
  /// unsatisfiable, and minimal iff `minimal`.
  std::vector<int> groups;
  bool minimal = false;
  std::int64_t satCalls = 0;

  [[nodiscard]] int size() const { return static_cast<int>(groups.size()); }
};

/// Deletion-based group-MUS extraction with group-set refinement.
/// Returns an empty, non-minimal result when background ∪ all groups is
/// satisfiable; when the background alone is unsatisfiable the empty
/// group set is returned with `minimal == true`.
[[nodiscard]] GroupMusResult extractGroupMusDeletion(
    const GroupCnf& gcnf, const MusOptions& options = {});

/// Dichotomic (QuickXplain) group-MUS extraction.
[[nodiscard]] GroupMusResult extractGroupMusDichotomic(
    const GroupCnf& gcnf, const MusOptions& options = {});

/// True iff background ∪ groups is unsatisfiable (CDCL-decided).
[[nodiscard]] bool groupSubsetUnsat(const GroupCnf& gcnf,
                                    std::span<const int> groups,
                                    const Budget& budget = {});

/// True iff `groups` is a group MUS: unsatisfiable with the background
/// and minimal.
[[nodiscard]] bool isGroupMus(const GroupCnf& gcnf,
                              std::span<const int> groups,
                              const Budget& budget = {});

}  // namespace msu
