#include "localsearch/walksat.h"

#include <algorithm>
#include <random>
#include <vector>

namespace msu {
namespace {

/// Internal flat clause representation: soft and hard clauses share one
/// array; hard clauses carry a weight exceeding the total soft weight so
/// the cost ordering always prefers hard-feasible assignments.
struct FlatClause {
  Clause lits;
  Weight weight = 1;
  bool hard = false;
};

class WalkSatEngine {
 public:
  WalkSatEngine(const WcnfFormula& formula, const WalkSatOptions& opts)
      : opts_(opts), n_(formula.numVars()) {
    const Weight hardWeight = formula.totalSoftWeight() + 1;
    for (const Clause& h : formula.hard()) {
      if (h.empty()) {
        hardUnsat_ = true;  // falsum: no assignment is hard-feasible
        continue;
      }
      clauses_.push_back(FlatClause{h, hardWeight, true});
    }
    for (const SoftClause& s : formula.soft()) {
      if (s.lits.empty()) {
        baseCost_ += s.weight;  // permanently falsified
        continue;
      }
      clauses_.push_back(FlatClause{s.lits, s.weight, false});
    }
    occ_.resize(static_cast<std::size_t>(2 * std::max(n_, 1)));
    for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
      for (Lit p : clauses_[ci].lits) {
        occ_[static_cast<std::size_t>(p.index())].push_back(
            static_cast<int>(ci));
      }
    }
    value_.assign(static_cast<std::size_t>(n_), false);
    trueCount_.assign(clauses_.size(), 0);
  }

  WalkSatResult run() {
    WalkSatResult result;
    result.bestCost = hardPenaltyCeiling();
    std::mt19937_64 rng(opts_.seed);
    if (hardUnsat_) return result;  // no assignment can be hard-feasible

    for (int r = 0; r < opts_.restarts; ++r) {
      randomInit(rng);
      for (std::int64_t f = 0; f < opts_.maxFlips; ++f) {
        ++result.flips;
        if ((result.flips & 1023) == 0 && opts_.budget.timeExpired()) {
          return result;
        }
        recordBest(result);
        const int ci = pickFalsifiedClause(rng);
        if (ci < 0) return result;  // everything satisfiable is satisfied
        const Lit flipLit = pickFlipLiteral(ci, rng);
        flip(flipLit.var());
      }
      recordBest(result);
    }
    return result;
  }

 private:
  [[nodiscard]] Weight hardPenaltyCeiling() const {
    Weight soft = 0;
    for (const FlatClause& c : clauses_) {
      if (!c.hard) soft += c.weight;
    }
    return soft + 1;
  }

  void randomInit(std::mt19937_64& rng) {
    for (int v = 0; v < n_; ++v) value_[static_cast<std::size_t>(v)] =
        (rng() & 1) != 0;
    falsified_.clear();
    cost_ = baseCost_;
    hardFalsified_ = 0;
    for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
      int tc = 0;
      for (Lit p : clauses_[ci].lits) {
        if (litTrue(p)) ++tc;
      }
      trueCount_[ci] = tc;
      if (tc == 0) {
        falsified_.push_back(static_cast<int>(ci));
        cost_ += clauses_[ci].weight;
        if (clauses_[ci].hard) ++hardFalsified_;
      }
    }
  }

  [[nodiscard]] bool litTrue(Lit p) const {
    const bool v = value_[static_cast<std::size_t>(p.var())];
    return p.positive() ? v : !v;
  }

  void recordBest(WalkSatResult& result) {
    if (hardFalsified_ > 0) return;
    const Weight softCost = cost_;  // hard weight contributes 0 here
    if (!result.hardFeasible || softCost < result.bestCost) {
      result.hardFeasible = true;
      result.bestCost = softCost;
      result.model.resize(static_cast<std::size_t>(n_));
      for (int v = 0; v < n_; ++v) {
        result.model[static_cast<std::size_t>(v)] =
            toLbool(value_[static_cast<std::size_t>(v)]);
      }
    }
  }

  /// Picks a currently falsified clause, compacting stale entries; -1 if
  /// every clause is satisfied.
  [[nodiscard]] int pickFalsifiedClause(std::mt19937_64& rng) {
    while (!falsified_.empty()) {
      const std::size_t idx = rng() % falsified_.size();
      const int ci = falsified_[idx];
      if (trueCount_[static_cast<std::size_t>(ci)] == 0) return ci;
      falsified_[idx] = falsified_.back();
      falsified_.pop_back();
    }
    return -1;
  }

  /// Weight of clauses broken by flipping `v` (satisfied clauses where v
  /// is the single true literal).
  [[nodiscard]] Weight breakWeight(Var v) const {
    const Lit current = Lit(v, !value_[static_cast<std::size_t>(v)]);
    // `current` is the literal of v that is presently TRUE.
    Weight w = 0;
    for (int ci : occ_[static_cast<std::size_t>(current.index())]) {
      if (trueCount_[static_cast<std::size_t>(ci)] == 1) {
        w += clauses_[static_cast<std::size_t>(ci)].weight;
      }
    }
    return w;
  }

  [[nodiscard]] Lit pickFlipLiteral(int ci, std::mt19937_64& rng) {
    const FlatClause& c = clauses_[static_cast<std::size_t>(ci)];
    // Free move: a variable with zero break weight.
    Lit best = c.lits[0];
    Weight bestBreak = -1;
    for (Lit p : c.lits) {
      const Weight b = breakWeight(p.var());
      if (b == 0) return p;
      if (bestBreak < 0 || b < bestBreak) {
        bestBreak = b;
        best = p;
      }
    }
    // Noise: random literal of the clause; otherwise the least-break one.
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    if (uni(rng) < opts_.noise) {
      return c.lits[rng() % c.lits.size()];
    }
    return best;
  }

  void flip(Var v) {
    const Lit nowTrue = Lit(v, value_[static_cast<std::size_t>(v)]);
    // After flipping, `nowTrue` (the previously-false literal) is true.
    value_[static_cast<std::size_t>(v)] = !value_[static_cast<std::size_t>(v)];
    for (int ci : occ_[static_cast<std::size_t>(nowTrue.index())]) {
      const auto cu = static_cast<std::size_t>(ci);
      if (trueCount_[cu] == 0) {
        cost_ -= clauses_[cu].weight;
        if (clauses_[cu].hard) --hardFalsified_;
      }
      ++trueCount_[cu];
    }
    for (int ci : occ_[static_cast<std::size_t>((~nowTrue).index())]) {
      const auto cu = static_cast<std::size_t>(ci);
      --trueCount_[cu];
      if (trueCount_[cu] == 0) {
        cost_ += clauses_[cu].weight;
        if (clauses_[cu].hard) ++hardFalsified_;
        falsified_.push_back(ci);
      }
    }
  }

  WalkSatOptions opts_;
  int n_;
  std::vector<FlatClause> clauses_;
  std::vector<std::vector<int>> occ_;  // lit index -> clause ids
  std::vector<bool> value_;
  std::vector<int> trueCount_;
  std::vector<int> falsified_;  // may contain stale entries
  Weight cost_ = 0;
  Weight baseCost_ = 0;  // weight of empty (always falsified) soft clauses
  bool hardUnsat_ = false;  // an empty hard clause exists
  int hardFalsified_ = 0;
};

}  // namespace

WalkSatResult walksatMaxSat(const WcnfFormula& formula,
                            const WalkSatOptions& options) {
  if (formula.numVars() == 0) {
    WalkSatResult r;
    // Degenerate: only (possibly empty) clauses without variables.
    r.hardFeasible = true;
    for (const Clause& h : formula.hard()) {
      if (h.empty()) r.hardFeasible = false;
    }
    for (const SoftClause& s : formula.soft()) {
      if (s.lits.empty()) r.bestCost += s.weight;
    }
    return r;
  }
  WalkSatEngine engine(formula, options);
  return engine.run();
}

}  // namespace msu
