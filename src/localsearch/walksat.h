/// \file walksat.h
/// \brief WalkSAT-style stochastic local search for (partial) MaxSAT.
///
/// An *incomplete* engine: it never proves optimality but finds good
/// assignments quickly. The paper's introduction cites incomplete
/// approaches as the prior practical answer for industrial MaxSAT; here
/// the engine doubles as (a) a standalone baseline and (b) the initial
/// upper bound provider for the branch-and-bound solver.

#pragma once

#include <cstdint>

#include "cnf/wcnf.h"
#include "sat/budget.h"

namespace msu {

/// Options for the local search.
struct WalkSatOptions {
  std::int64_t maxFlips = 200'000;  ///< flips per restart
  int restarts = 3;                 ///< independent tries
  double noise = 0.3;               ///< probability of a random walk move
  std::uint64_t seed = 1;           ///< RNG seed (deterministic runs)
  Budget budget;                    ///< optional wall-clock budget
};

/// Result of a local-search run.
struct WalkSatResult {
  /// Weight of falsified soft clauses of the best assignment that
  /// satisfies all hard clauses; `totalSoftWeight() + 1` when no
  /// hard-feasible assignment was found.
  Weight bestCost = 0;
  /// True iff some visited assignment satisfied every hard clause.
  bool hardFeasible = false;
  Assignment model;  ///< the best assignment (complete)
  std::int64_t flips = 0;
};

/// Runs WalkSAT on the instance.
[[nodiscard]] WalkSatResult walksatMaxSat(const WcnfFormula& formula,
                                          const WalkSatOptions& options = {});

}  // namespace msu
