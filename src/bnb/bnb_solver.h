/// \file bnb_solver.h
/// \brief Branch-and-bound MaxSAT in the style of maxsatz (Li, Manyà &
///        Planes) — the best-performing MaxSAT-evaluation solver the
///        DATE'08 paper compares against.
///
/// A DPLL-style search that maintains the number of already-falsified
/// soft clauses and prunes with a lower bound computed by *simulated
/// unit propagation*: repeatedly propagate effective unit clauses of the
/// reduced formula; every derived conflict identifies an inconsistent
/// clause subset that is then disabled, and the count of disjoint
/// subsets underestimates the additional cost (Li–Manyà–Planes, AAAI'06;
/// this subsumes maxsatz's complementary-unit rule for counting). Hard
/// unit clauses are propagated as forced assignments; Jeroslow–Wang
/// scoring drives branching; WalkSAT provides the initial upper bound.
///
/// Exactly as the paper reports for maxsatz, this class of solver is
/// strong on small random instances and collapses on large structured
/// (EDA) instances — reproducing that asymmetry is the point of
/// Table 1 / Figure 1.

#pragma once

#include "core/maxsat.h"

namespace msu {

/// Options for the branch-and-bound engine.
struct BnbOptions {
  Budget budget;
  bool upLowerBound = true;     ///< UP-based disjoint-inconsistency bound
  bool walksatInitialUb = true; ///< seed the upper bound with local search
  std::int64_t walksatFlips = 20'000;  ///< effort for the initial bound
};

/// The maxsatz-like engine.
class BnbSolver final : public MaxSatSolver {
 public:
  explicit BnbSolver(BnbOptions options = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

 private:
  BnbOptions opts_;
};

}  // namespace msu
