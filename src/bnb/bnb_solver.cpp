#include "bnb/bnb_solver.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "localsearch/walksat.h"

namespace msu {
namespace {

/// Internal clause representation for the branch-and-bound search.
struct BClause {
  Clause lits;
  bool hard = false;
};

class BnbEngine {
 public:
  BnbEngine(const WcnfFormula& formula, const BnbOptions& opts)
      : opts_(opts), formula_(formula), n_(formula.numVars()) {
    for (const Clause& h : formula.hard()) {
      clauses_.push_back(BClause{h, true});
    }
    for (const SoftClause& s : formula.soft()) {
      clauses_.push_back(BClause{s.lits, false});
    }
    const std::size_t m = clauses_.size();
    trueCnt_.assign(m, 0);
    falseCnt_.assign(m, 0);
    clauseDisabledStamp_.assign(m, 0);
    occ_.resize(static_cast<std::size_t>(2 * std::max(n_, 1)));
    for (std::size_t ci = 0; ci < m; ++ci) {
      for (Lit p : clauses_[ci].lits) {
        occ_[static_cast<std::size_t>(p.index())].push_back(
            static_cast<int>(ci));
      }
    }
    val_.assign(static_cast<std::size_t>(n_), lbool::Undef);
    tmpStampArr_.assign(static_cast<std::size_t>(n_), 0);
    tmpVal_.assign(static_cast<std::size_t>(n_), false);
    tmpReason_.assign(static_cast<std::size_t>(n_), -1);
    // Clauses empty from the start are permanently falsified.
    for (std::size_t ci = 0; ci < m; ++ci) {
      if (clauses_[ci].lits.empty()) {
        if (clauses_[ci].hard) {
          ++hardViol_;
        } else {
          ++falsifiedSoft_;
        }
      }
    }
  }

  MaxSatResult run() {
    MaxSatResult result;
    const Weight m = formula_.numSoft();

    if (hardViol_ > 0) {
      result.status = MaxSatStatus::UnsatisfiableHard;
      return result;
    }

    ub_ = m + 1;
    if (opts_.walksatInitialUb) {
      WalkSatOptions wo;
      wo.maxFlips = opts_.walksatFlips;
      wo.restarts = 2;
      wo.budget = opts_.budget;
      const WalkSatResult ws = walksatMaxSat(formula_, wo);
      if (ws.hardFeasible) {
        ub_ = ws.bestCost;
        bestModel_ = ws.model;
      }
    }

    // Root-level lower bound, reported when the budget runs out.
    rootLb_ = static_cast<Weight>(falsifiedSoft_);
    if (opts_.upLowerBound) rootLb_ += upUnderestimate();

    // Seed hard unit clauses.
    for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
      if (clauses_[ci].hard && clauses_[ci].lits.size() == 1) {
        unitQueue_.push_back(static_cast<int>(ci));
      }
    }

    const bool aborted = search();

    result.iterations = nodes_;
    if (aborted) {
      result.status = MaxSatStatus::Unknown;
      result.lowerBound = rootLb_;
      result.upperBound = std::min<Weight>(ub_, m);
      if (ub_ <= m) result.model = completedBestModel();
      return result;
    }
    if (ub_ > m) {
      result.status = MaxSatStatus::UnsatisfiableHard;
      return result;
    }
    result.status = MaxSatStatus::Optimum;
    result.cost = ub_;
    result.lowerBound = ub_;
    result.upperBound = ub_;
    result.model = completedBestModel();
    return result;
  }

 private:
  // ---- assignment bookkeeping -----------------------------------------

  void assign(Lit p) {
    val_[static_cast<std::size_t>(p.var())] = toLbool(p.positive());
    trail_.push_back(p);
    for (int ci : occ_[static_cast<std::size_t>(p.index())]) {
      ++trueCnt_[static_cast<std::size_t>(ci)];
    }
    for (int ci : occ_[static_cast<std::size_t>((~p).index())]) {
      const auto cu = static_cast<std::size_t>(ci);
      ++falseCnt_[cu];
      const auto size = static_cast<int>(clauses_[cu].lits.size());
      if (falseCnt_[cu] == size) {
        if (clauses_[cu].hard) {
          ++hardViol_;
        } else {
          ++falsifiedSoft_;
        }
      } else if (clauses_[cu].hard && trueCnt_[cu] == 0 &&
                 falseCnt_[cu] == size - 1) {
        unitQueue_.push_back(ci);  // became a hard unit
      }
    }
  }

  void unassign() {
    const Lit p = trail_.back();
    trail_.pop_back();
    for (int ci : occ_[static_cast<std::size_t>(p.index())]) {
      --trueCnt_[static_cast<std::size_t>(ci)];
    }
    for (int ci : occ_[static_cast<std::size_t>((~p).index())]) {
      const auto cu = static_cast<std::size_t>(ci);
      if (falseCnt_[cu] == static_cast<int>(clauses_[cu].lits.size())) {
        if (clauses_[cu].hard) {
          --hardViol_;
        } else {
          --falsifiedSoft_;
        }
      }
      --falseCnt_[cu];
    }
    val_[static_cast<std::size_t>(p.var())] = lbool::Undef;
  }

  void undoTo(std::size_t mark) {
    while (trail_.size() > mark) unassign();
  }

  [[nodiscard]] lbool value(Lit p) const {
    return applySign(val_[static_cast<std::size_t>(p.var())], p);
  }

  // ---- hard unit propagation -------------------------------------------

  /// Propagates pending hard units; returns false on a hard conflict.
  bool propagateHard() {
    while (!unitQueue_.empty()) {
      const int ci = unitQueue_.back();
      unitQueue_.pop_back();
      const auto cu = static_cast<std::size_t>(ci);
      if (trueCnt_[cu] > 0) continue;
      const auto size = static_cast<int>(clauses_[cu].lits.size());
      if (falseCnt_[cu] != size - 1) continue;  // stale entry
      // Find the single free literal.
      Lit free = kUndefLit;
      for (Lit p : clauses_[cu].lits) {
        if (value(p) == lbool::Undef) {
          free = p;
          break;
        }
      }
      if (!free.defined()) continue;  // raced with another propagation
      assign(free);
      if (hardViol_ > 0) {
        unitQueue_.clear();
        return false;
      }
    }
    return true;
  }

  // ---- lower bound: simulated UP, disjoint inconsistent subsets ---------

  [[nodiscard]] bool clauseDisabled(int ci) const {
    return clauseDisabledStamp_[static_cast<std::size_t>(ci)] == roundStamp_;
  }

  [[nodiscard]] lbool effValue(Lit p) const {
    const lbool real = value(p);
    if (real != lbool::Undef) return real;
    const auto v = static_cast<std::size_t>(p.var());
    if (tmpStampArr_[v] != tmpStamp_) return lbool::Undef;
    const bool pos = tmpVal_[v];
    return toLbool(p.positive() ? pos : !pos);
  }

  void tmpAssign(Lit p, int reason) {
    const auto v = static_cast<std::size_t>(p.var());
    tmpStampArr_[v] = tmpStamp_;
    tmpVal_[v] = p.positive();
    tmpReason_[v] = reason;
    tmpTrail_.push_back(p);
  }

  /// Classifies clause `ci` under real+tmp assignment.
  struct EffState {
    bool satisfied = false;
    int freeCount = 0;
    Lit freeLit = kUndefLit;
  };
  [[nodiscard]] EffState effState(int ci) const {
    EffState st;
    for (Lit p : clauses_[static_cast<std::size_t>(ci)].lits) {
      const lbool v = effValue(p);
      if (v == lbool::True) {
        st.satisfied = true;
        return st;
      }
      if (v == lbool::Undef) {
        ++st.freeCount;
        st.freeLit = p;
      }
    }
    return st;
  }

  /// Collects the clauses involved in a simulated conflict and disables
  /// them for the remainder of this underestimate round set.
  void disableConflictSet(int conflictClause) {
    std::vector<int> stack{conflictClause};
    while (!stack.empty()) {
      const int ci = stack.back();
      stack.pop_back();
      if (clauseDisabled(ci)) continue;
      clauseDisabledStamp_[static_cast<std::size_t>(ci)] = roundStamp_;
      for (Lit p : clauses_[static_cast<std::size_t>(ci)].lits) {
        const auto v = static_cast<std::size_t>(p.var());
        if (value(p) != lbool::Undef) continue;  // real assignment
        if (tmpStampArr_[v] == tmpStamp_ && tmpReason_[v] >= 0) {
          stack.push_back(tmpReason_[v]);
        }
      }
    }
  }

  /// Number of disjoint inconsistent subsets found by simulated UP on the
  /// reduced formula (additional cost below this node).
  [[nodiscard]] int upUnderestimate() {
    ++roundStamp_;
    int conflicts = 0;
    while (true) {
      ++tmpStamp_;
      tmpTrail_.clear();
      std::vector<int> queue;
      for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
        if (clauseDisabled(static_cast<int>(ci))) continue;
        if (clauses_[ci].lits.empty()) continue;
        const EffState st = effState(static_cast<int>(ci));
        if (!st.satisfied && st.freeCount == 1) {
          queue.push_back(static_cast<int>(ci));
        }
      }
      bool conflictFound = false;
      std::size_t qhead = 0;
      while (qhead < queue.size() && !conflictFound) {
        const int ci = queue[qhead++];
        if (clauseDisabled(ci)) continue;
        const EffState st = effState(ci);
        if (st.satisfied) continue;
        if (st.freeCount == 0) {
          disableConflictSet(ci);
          ++conflicts;
          conflictFound = true;
          break;
        }
        if (st.freeCount != 1) continue;
        tmpAssign(st.freeLit, ci);
        for (int cj : occ_[static_cast<std::size_t>((~st.freeLit).index())]) {
          if (clauseDisabled(cj)) continue;
          const EffState sj = effState(cj);
          if (sj.satisfied) continue;
          if (sj.freeCount == 0) {
            // cj just became empty: conflict. Its falsity flows through
            // st.freeLit whose reason is ci.
            disableConflictSet(cj);
            ++conflicts;
            conflictFound = true;
            break;
          }
          if (sj.freeCount == 1) queue.push_back(cj);
        }
      }
      if (!conflictFound) break;
    }
    return conflicts;
  }

  // ---- branching ---------------------------------------------------------

  /// Jeroslow–Wang scores over the reduced formula; returns the literal to
  /// try first, or undef when all variables are assigned.
  [[nodiscard]] Lit pickBranchLit() const {
    std::vector<double> score(static_cast<std::size_t>(2 * n_), 0.0);
    bool any = false;
    for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
      if (trueCnt_[ci] > 0) continue;
      const auto size = static_cast<int>(clauses_[ci].lits.size());
      const int freeLen = size - falseCnt_[ci];
      if (freeLen <= 0) continue;
      const double w = std::ldexp(1.0, -std::min(freeLen, 30));
      for (Lit p : clauses_[ci].lits) {
        if (value(p) == lbool::Undef) {
          score[static_cast<std::size_t>(p.index())] += w;
          any = true;
        }
      }
    }
    if (!any) {
      // No unsatisfied clause has a free literal left: the cost of this
      // branch is fully determined, so treat the assignment as complete
      // (unassigned variables are irrelevant).
      return kUndefLit;
    }
    Lit best = kUndefLit;
    double bestScore = -1.0;
    for (Var v = 0; v < n_; ++v) {
      if (val_[static_cast<std::size_t>(v)] != lbool::Undef) continue;
      const double sp = score[static_cast<std::size_t>(posLit(v).index())];
      const double sn = score[static_cast<std::size_t>(negLit(v).index())];
      const double total = sp + sn;
      if (total > bestScore) {
        bestScore = total;
        best = sp >= sn ? posLit(v) : negLit(v);
      }
    }
    return best;
  }

  // ---- search -------------------------------------------------------------

  [[nodiscard]] Assignment completedBestModel() const {
    Assignment out = bestModel_;
    out.resize(static_cast<std::size_t>(n_), lbool::False);
    for (lbool& v : out) {
      if (v == lbool::Undef) v = lbool::False;
    }
    return out;
  }

  void saveModel() {
    bestModel_.resize(static_cast<std::size_t>(n_));
    for (Var v = 0; v < n_; ++v) {
      bestModel_[static_cast<std::size_t>(v)] =
          val_[static_cast<std::size_t>(v)] == lbool::Undef
              ? lbool::False
              : val_[static_cast<std::size_t>(v)];
    }
  }

  /// Depth-first branch and bound; returns true iff aborted on budget.
  bool search() {
    ++nodes_;
    if ((nodes_ & 255) == 0 &&
        (opts_.budget.timeExpired() || opts_.budget.nodesExhausted(nodes_))) {
      return true;
    }
    const std::size_t mark = trail_.size();

    if (!propagateHard()) {
      undoTo(mark);
      return false;  // hard conflict: prune
    }
    if (static_cast<Weight>(falsifiedSoft_) >= ub_) {
      undoTo(mark);
      return false;
    }
    if (opts_.upLowerBound) {
      const int extra = upUnderestimate();
      if (static_cast<Weight>(falsifiedSoft_ + extra) >= ub_) {
        undoTo(mark);
        return false;
      }
    }

    const Lit branch = pickBranchLit();
    if (!branch.defined()) {
      // Complete assignment (over relevant variables): new best.
      ub_ = falsifiedSoft_;
      saveModel();
      undoTo(mark);
      return false;
    }

    for (const Lit p : {branch, ~branch}) {
      const std::size_t mark2 = trail_.size();
      assign(p);
      if (hardViol_ == 0) {
        if (search()) {
          undoTo(mark);
          return true;
        }
      }
      undoTo(mark2);
    }
    undoTo(mark);
    return false;
  }

  BnbOptions opts_;
  const WcnfFormula& formula_;
  int n_;
  std::vector<BClause> clauses_;
  std::vector<std::vector<int>> occ_;
  std::vector<int> trueCnt_;
  std::vector<int> falseCnt_;
  std::vector<lbool> val_;
  std::vector<Lit> trail_;
  std::vector<int> unitQueue_;
  int falsifiedSoft_ = 0;
  int hardViol_ = 0;

  // Simulated-UP scratch (stamp-versioned).
  std::vector<std::uint32_t> tmpStampArr_;
  std::vector<bool> tmpVal_;
  std::vector<int> tmpReason_;
  std::vector<Lit> tmpTrail_;
  std::vector<std::uint32_t> clauseDisabledStamp_;
  std::uint32_t tmpStamp_ = 0;
  std::uint32_t roundStamp_ = 0;

  Weight ub_ = 0;
  Weight rootLb_ = 0;
  Assignment bestModel_;
  std::int64_t nodes_ = 0;
};

}  // namespace

BnbSolver::BnbSolver(BnbOptions options) : opts_(options) {}

std::string BnbSolver::name() const { return "maxsatz-like"; }

MaxSatResult BnbSolver::solve(const WcnfFormula& input) {
  MaxSatResult result;
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return result;
  BnbEngine engine(*reduced, opts_);
  result = engine.run();
  return result;
}

}  // namespace msu
