/// \file msu4.h
/// \brief The paper's contribution: the msu4 core-guided MaxSAT
///        algorithm (Marques-Silva & Planes, DATE 2008, Algorithm 1).
///
/// msu4 alternates SAT calls on a working formula:
///  * UNSAT outcomes yield a core; initial clauses in the core without a
///    blocking variable are relaxed with one blocking variable each (we
///    reuse the clause's selector — see soft_tracker.h), an optional
///    "at-least-one new blocking variable" clause is added, and the
///    proven lower bound on the cost rises by one.
///  * SAT outcomes yield a model whose blocking-variable count refines
///    the upper bound; a cardinality constraint over *all* blocking
///    variables then forces the next model to be strictly better.
/// Termination: a core containing no unblocked initial clause, or the
/// bounds meeting. The best model's cost is the MaxSAT optimum.
///
/// Variants: v1 = BDD cardinality encoding, v2 = sorting networks —
/// exactly the paper's two implementations.

#pragma once

#include "core/maxsat.h"

namespace msu {

/// The msu4 engine.
class Msu4Solver final : public MaxSatSolver {
 public:
  explicit Msu4Solver(MaxSatOptions options = {});

  /// Paper variant v1 (BDD cardinality encodings).
  [[nodiscard]] static Msu4Solver v1(MaxSatOptions options = {});

  /// Paper variant v2 (sorting-network cardinality encodings).
  [[nodiscard]] static Msu4Solver v2(MaxSatOptions options = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

 private:
  MaxSatOptions opts_;
};

}  // namespace msu
