#include "core/preprocess.h"

#include <map>

#include "sat/solver.h"

namespace msu {

PreprocessResult preprocessWcnf(const WcnfFormula& formula) {
  PreprocessResult result;
  result.forced.assign(static_cast<std::size_t>(formula.numVars()),
                       lbool::Undef);

  // Unit-propagate the hard clauses at level 0.
  Solver up;
  while (up.numVars() < formula.numVars()) static_cast<void>(up.newVar());
  bool hardRefuted = false;
  for (const Clause& h : formula.hard()) {
    if (!up.addClause(h)) {
      hardRefuted = true;
      break;
    }
  }
  if (hardRefuted) return result;  // simplified unset

  for (Var v = 0; v < formula.numVars(); ++v) {
    const lbool val = up.value(v);
    if (val != lbool::Undef) {
      result.forced[static_cast<std::size_t>(v)] = val;
      ++result.fixedVars;
    }
  }

  auto litValue = [&](Lit p) {
    return applySign(result.forced[static_cast<std::size_t>(p.var())], p);
  };

  /// Applies the forced values to a clause. Returns nullopt when the
  /// clause is satisfied; otherwise the reduced, normalized literal set
  /// (empty = falsified).
  auto reduce = [&](const Clause& c) -> std::optional<Clause> {
    Clause out;
    for (Lit p : c) {
      const lbool v = litValue(p);
      if (v == lbool::True) return std::nullopt;
      if (v == lbool::Undef) out.push_back(p);
    }
    if (isTautology(out)) return std::nullopt;
    return normalizedClause(out);
  };

  WcnfFormula simplified(formula.numVars());

  // Hard clauses: reduce and de-duplicate.
  std::map<Clause, bool> seenHard;
  for (const Clause& h : formula.hard()) {
    const std::optional<Clause> r = reduce(h);
    if (!r) {
      ++result.removedHard;
      continue;
    }
    // A falsified hard clause would have refuted UP above.
    if (!seenHard.emplace(*r, true).second) {
      ++result.removedHard;
      continue;
    }
    simplified.addHard(*r);
  }

  // Soft clauses: reduce, charge falsified ones, merge duplicates.
  std::map<Clause, std::size_t> softIndex;
  std::vector<SoftClause> softOut;
  for (const SoftClause& s : formula.soft()) {
    const std::optional<Clause> r = reduce(s.lits);
    if (!r) {
      ++result.removedSoft;
      continue;
    }
    if (r->empty()) {
      result.forcedCost += s.weight;
      ++result.removedSoft;
      continue;
    }
    if (auto it = softIndex.find(*r); it != softIndex.end()) {
      softOut[it->second].weight += s.weight;
      ++result.mergedSoft;
      continue;
    }
    softIndex.emplace(*r, softOut.size());
    softOut.push_back(SoftClause{*r, s.weight});
  }
  for (const SoftClause& s : softOut) simplified.addSoft(s.lits, s.weight);

  result.simplified = std::move(simplified);
  return result;
}

}  // namespace msu
