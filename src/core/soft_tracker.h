/// \file soft_tracker.h
/// \brief Loads a WCNF instance into a CDCL solver with one selector
///        literal per soft clause and maps unsatisfiable cores back to
///        soft-clause indices.
///
/// Soft clause `C_i` is stored as `(C_i ∨ a_i)` for a fresh selector
/// variable `a_i`. Assuming `¬a_i` enforces the clause; a final-conflict
/// core is therefore a set of soft indices. When a core-guided algorithm
/// decides to *relax* a clause, it simply stops assuming `¬a_i` — the
/// selector doubles as the paper's blocking variable `b_i`, which yields
/// msu4's "at most one blocking variable per clause" invariant by
/// construction.

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cnf/wcnf.h"
#include "sat/solver.h"

namespace msu {

/// Selector bookkeeping for soft clauses inside a Solver.
class SoftTracker {
 public:
  /// Adds all hard clauses and selector-augmented soft clauses of
  /// `formula` to `solver`. The formula must be unweighted.
  SoftTracker(Solver& solver, const WcnfFormula& formula);

  /// Number of soft clauses tracked.
  [[nodiscard]] int numSoft() const {
    return static_cast<int>(selectors_.size());
  }

  /// Number of original problem variables (model prefix length).
  [[nodiscard]] int numOriginalVars() const { return num_original_vars_; }

  /// Selector literal `a_i` of soft clause `i` (true = clause blocked).
  [[nodiscard]] Lit selector(int i) const {
    return selectors_[static_cast<std::size_t>(i)];
  }

  /// Soft index owning selector variable `v`, if any.
  [[nodiscard]] std::optional<int> softOfVar(Var v) const;

  /// Marks soft clause `i` as relaxed (its selector becomes a free
  /// blocking variable). Idempotent.
  void relax(int i) {
    if (relaxed_[static_cast<std::size_t>(i)] == 0) {
      relaxed_[static_cast<std::size_t>(i)] = 1;
      relax_order_.push_back(i);
      ++num_relaxed_;
    }
  }

  /// True iff soft clause `i` has been relaxed.
  [[nodiscard]] bool isRelaxed(int i) const {
    return relaxed_[static_cast<std::size_t>(i)] != 0;
  }

  /// Number of relaxed clauses.
  [[nodiscard]] int numRelaxed() const { return num_relaxed_; }

  /// Assumption vector enforcing every non-relaxed soft clause, in
  /// *canonical* order: ascending selector variable (enforced by a
  /// stable sort, though construction already creates selectors in
  /// ascending variable order). The order is part of the tracker's
  /// contract — consecutive oracle calls differ only where clauses were
  /// relaxed in between, so a warm-started solver
  /// (Solver::Options::reuse_trail) reuses the maximal trail prefix;
  /// see the prefix-stability contract in core/oracle_session.h.
  [[nodiscard]] std::vector<Lit> assumptions() const;

  /// Selector literals of all relaxed clauses (the blocking variables),
  /// in *relaxation order* — strictly append-only as relaxation grows,
  /// which is what lets incremental cardinality structures (totalizers)
  /// extend by suffix instead of re-encoding.
  [[nodiscard]] std::vector<Lit> blockingLits() const;

  /// Maps a failed-assumption core to soft-clause indices (sorted).
  [[nodiscard]] std::vector<int> coreSoftIndices(
      std::span<const Lit> core) const;

  /// Number of *relaxed* soft clauses whose original literals are
  /// falsified by `model` (the tightened "nu" of a SAT iteration: blocked
  /// clauses that genuinely need their blocking variable).
  [[nodiscard]] int relaxedFalsifiedCost(
      const WcnfFormula& formula, const std::vector<lbool>& model) const;

  /// Number of blocking variables assigned true in `model` (the paper's
  /// raw "nu").
  [[nodiscard]] int blockingAssignedTrue(const std::vector<lbool>& model) const;

  /// Extracts the model restricted to the original variables.
  [[nodiscard]] Assignment originalModel(const std::vector<lbool>& model) const;

 private:
  int num_original_vars_ = 0;
  int num_relaxed_ = 0;
  std::vector<Lit> selectors_;    // a_i per soft clause
  std::vector<char> relaxed_;     // 1 = blocking variable freed
  std::vector<int> relax_order_;  // soft indices in relaxation order
  std::vector<int> var_to_soft_;  // var -> soft index (-1 if none)
};

}  // namespace msu
