#include "core/oll.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>

#include "core/core_trim.h"
#include "encodings/sink.h"
#include "encodings/totalizer.h"

namespace msu {

OllSolver::OllSolver(MaxSatOptions options) : opts_(options) {}

std::string OllSolver::name() const { return "oll"; }

MaxSatResult OllSolver::solve(const WcnfFormula& formula) {
  MaxSatResult result;
  const Weight total = formula.totalSoftWeight();

  Solver sat(opts_.sat);
  sat.setBudget(opts_.budget);
  SolverSink sink(sat);
  for (Var v = 0; v < formula.numVars(); ++v) static_cast<void>(sat.newVar());
  for (const Clause& c : formula.hard()) static_cast<void>(sat.addClause(c));

  // Active soft items, keyed by assumption literal: assuming the literal
  // claims "no (further) cost here"; its weight is what a violation
  // still costs beyond the charged lower bound.
  std::map<Lit, Weight> active;

  // Soft-clause selectors: (C_i ∨ s_i), assumption ¬s_i.
  for (const SoftClause& sc : formula.soft()) {
    const Lit sel = posLit(sat.newVar());
    Clause withSel = sc.lits;
    withSel.push_back(sel);
    static_cast<void>(sat.addClause(withSel));
    active[~sel] += sc.weight;
  }

  // Soft cardinality constraints: assumption literal -> (totalizer id,
  // bound b), meaning "at most b of the underlying core violated".
  struct SumRef {
    int totalizer = -1;
    int bound = 0;
  };
  std::vector<std::unique_ptr<Totalizer>> totalizers;
  std::map<Lit, SumRef> sums;

  Weight lower = 0;

  auto notifyBounds = [&] {
    if (opts_.onBounds) opts_.onBounds(lower, total + 1);
  };

  auto finish = [&](MaxSatStatus st, Weight cost, Assignment model) {
    result.status = st;
    result.lowerBound = lower;
    result.upperBound = (st == MaxSatStatus::Optimum) ? cost : total;
    result.cost = (st == MaxSatStatus::Optimum) ? cost : 0;
    result.model = std::move(model);
    result.satStats = sat.stats();
    return result;
  };

  if (!sat.okay()) return finish(MaxSatStatus::UnsatisfiableHard, 0, {});

  while (true) {
    ++result.iterations;
    ++result.satCalls;
    std::vector<Lit> assumptions;
    assumptions.reserve(active.size());
    for (const auto& [lit, w] : active) assumptions.push_back(lit);

    const lbool st = sat.solve(assumptions);
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown, 0, {});

    if (st == lbool::True) {
      // All residual softs satisfied: the model's cost equals the
      // charged lower bound, which is the optimum.
      Assignment model(static_cast<std::size_t>(formula.numVars()));
      for (Var v = 0; v < formula.numVars(); ++v) {
        model[static_cast<std::size_t>(v)] =
            sat.model()[static_cast<std::size_t>(v)];
      }
      const std::optional<Weight> cost = formula.cost(model);
      assert(cost.has_value());
      return finish(MaxSatStatus::Optimum, cost.value_or(lower),
                    std::move(model));
    }

    // UNSAT: process the core.
    ++result.coresFound;
    std::vector<Lit> core = sat.core();
    if (core.empty()) return finish(MaxSatStatus::UnsatisfiableHard, 0, {});
    if (opts_.trimCoreRounds > 0 && core.size() > 1) {
      CoreTrimOptions trimOpts;
      trimOpts.trimRounds = opts_.trimCoreRounds;
      core = trimCore(sat, std::move(core), trimOpts);
      result.satCalls += opts_.trimCoreRounds;
    }

    Weight wmin = 0;
    for (const Lit a : core) {
      const auto it = active.find(a);
      assert(it != active.end());
      wmin = (wmin == 0) ? it->second : std::min(wmin, it->second);
    }
    lower += wmin;
    notifyBounds();

    // Charge every member; deactivate the fully paid ones. For soft
    // cardinality members, lazily extend the bound: everything a
    // violation beyond `bound+1` costs is carried by the successor
    // assumption (weight accumulates if it is already active).
    for (const Lit a : core) {
      auto it = active.find(a);
      it->second -= wmin;
      if (it->second == 0) active.erase(it);

      const auto sumIt = sums.find(a);
      if (sumIt == sums.end()) continue;
      const SumRef ref = sumIt->second;
      Totalizer& tot = *totalizers[static_cast<std::size_t>(ref.totalizer)];
      const int nextBound = ref.bound + 1;
      if (nextBound >= tot.numInputs()) continue;  // "<= k" is vacuous
      const Lit next = ~tot.outputs()[static_cast<std::size_t>(nextBound)];
      active[next] += wmin;
      sums.emplace(next, SumRef{ref.totalizer, nextBound});
    }

    // New soft cardinality constraint over this core: "at most one of
    // these violated" at weight wmin (a singleton core has nothing to
    // count — its violation is fully charged already).
    if (core.size() >= 2) {
      std::vector<Lit> violated;
      violated.reserve(core.size());
      for (const Lit a : core) violated.push_back(~a);
      totalizers.push_back(std::make_unique<Totalizer>(
          sink, violated, /*bothPolarities=*/false));
      Totalizer& tot = *totalizers.back();
      const Lit slit = ~tot.outputs()[1];
      active[slit] += wmin;
      sums.emplace(slit, SumRef{static_cast<int>(totalizers.size()) - 1, 1});
    }
  }
}

}  // namespace msu
