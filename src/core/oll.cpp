#include "core/oll.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <unordered_map>

#include "core/core_trim.h"
#include "core/oracle_session.h"
#include "encodings/totalizer.h"

namespace msu {

OllSolver::OllSolver(MaxSatOptions options) : opts_(options) {}

std::string OllSolver::name() const { return "oll"; }

MaxSatResult OllSolver::solve(const WcnfFormula& formula) {
  MaxSatResult result;
  const Weight total = formula.totalSoftWeight();

  OracleSession session(opts_);
  session.addHards(formula);

  // Active soft items, keyed by assumption literal: assuming the literal
  // claims "no (further) cost here"; its weight is what a violation
  // still costs beyond the charged lower bound.
  std::map<Lit, Weight> active;

  // Soft-clause selectors: (C_i ∨ s_i), assumption ¬s_i.
  for (const SoftClause& sc : formula.soft()) {
    const Lit sel = posLit(session.sat().newVar());
    Clause withSel = sc.lits;
    withSel.push_back(sel);
    static_cast<void>(session.sat().addClause(withSel));
    active[~sel] += sc.weight;
  }

  // Soft cardinality constraints: assumption literal -> (totalizer id,
  // bound b), meaning "at most b of the underlying core violated". Each
  // totalizer lives in its own enforced scope and counts how many of
  // its bound assumptions are still active: once the last one is paid
  // off (no successor bound remains), the whole structure is vacuous
  // and its scope is physically retired — clauses deleted, counting
  // variables recycled.
  //
  // Cores may name the sum assumptions of earlier totalizers, so a new
  // totalizer can *count the outputs* of older ones. Such a dependency
  // pins the older structure: retiring it early would let the retire()
  // literal scan delete the dependent's counting clauses (the scope
  // contract's cross-scope safety net acting as a wrecking ball).
  // Retirement therefore waits until a structure is both vacuous and
  // unpinned, cascading to its dependencies.
  struct SumRef {
    int totalizer = -1;
    int bound = 0;
  };
  struct TotRec {
    std::unique_ptr<Totalizer> tot;
    ScopeHandle scope;
    int activeSums = 0;
    int pins = 0;           // live dependents counting our outputs
    std::vector<int> deps;  // totalizer ids our inputs reference
  };
  std::vector<TotRec> totalizers;
  std::map<Lit, SumRef> sums;
  std::unordered_map<Var, int> outputOwner;  // totalizer output var -> id

  Weight lower = 0;

  auto notifyBounds = [&] {
    if (opts_.onBounds) opts_.onBounds(lower, total + 1);
  };

  auto finish = [&](MaxSatStatus st, Weight cost, Assignment model) {
    result.status = st;
    result.lowerBound = lower;
    result.upperBound = (st == MaxSatStatus::Optimum) ? cost : total;
    result.cost = (st == MaxSatStatus::Optimum) ? cost : 0;
    result.model = std::move(model);
    session.exportStats(result);
    return result;
  };

  if (!session.okay()) return finish(MaxSatStatus::UnsatisfiableHard, 0, {});

  while (true) {
    ++result.iterations;
    std::vector<Lit> assumptions;
    assumptions.reserve(active.size());
    for (const auto& [lit, w] : active) assumptions.push_back(lit);

    const lbool st = session.solve(assumptions);
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown, 0, {});

    if (st == lbool::True) {
      // All residual softs satisfied: the model's cost equals the
      // charged lower bound, which is the optimum. The equality is the
      // exactness of the RC2-style charge bookkeeping — if it ever
      // drifts, the accounting is undercounting and the "optimum" would
      // be wrong, so fail loudly in debug builds.
      Assignment model(static_cast<std::size_t>(formula.numVars()));
      for (Var v = 0; v < formula.numVars(); ++v) {
        model[static_cast<std::size_t>(v)] =
            session.sat().model()[static_cast<std::size_t>(v)];
      }
      const std::optional<Weight> cost = formula.cost(model);
      assert(cost.has_value() && *cost == lower);
      return finish(MaxSatStatus::Optimum, cost.value_or(lower),
                    std::move(model));
    }

    // UNSAT: process the core.
    ++result.coresFound;
    std::vector<Lit> core = session.sat().core();
    // Auto-assumed scope activators may ride along in the core; only
    // the tracked assumption literals carry cost.
    std::erase_if(core, [&](Lit p) { return !active.contains(p); });
    if (core.empty()) return finish(MaxSatStatus::UnsatisfiableHard, 0, {});
    if (opts_.trimCoreRounds > 0 && core.size() > 1) {
      CoreTrimOptions trimOpts;
      trimOpts.trimRounds = opts_.trimCoreRounds;
      core = session.trimCore(std::move(core), trimOpts);
      std::erase_if(core, [&](Lit p) { return !active.contains(p); });
      if (core.empty()) return finish(MaxSatStatus::UnsatisfiableHard, 0, {});
    }

    Weight wmin = 0;
    for (const Lit a : core) {
      const auto it = active.find(a);
      assert(it != active.end());
      wmin = (wmin == 0) ? it->second : std::min(wmin, it->second);
    }
    lower += wmin;
    notifyBounds();

    // Charge every member; deactivate the fully paid ones. For soft
    // cardinality members, push this core's charge onto the *successor*
    // bound on every occurrence (RC2-style), fully paid or not: a
    // totalizer may carry several active bounds with split weights.
    // Only charging the successor on full payment would leak charge
    // mass on partial payments, leaving the assumption set too weak —
    // the search then accepts a suboptimal model as "optimal" (its
    // cost exceeding the proven lower bound).
    std::vector<int> touched;  // totalizers whose sums changed
    for (const Lit a : core) {
      auto it = active.find(a);
      it->second -= wmin;
      const bool paid = it->second == 0;
      if (paid) active.erase(it);

      const auto sumIt = sums.find(a);
      if (sumIt == sums.end()) continue;
      const SumRef ref = sumIt->second;
      TotRec& rec = totalizers[static_cast<std::size_t>(ref.totalizer)];
      touched.push_back(ref.totalizer);
      if (paid) {
        sums.erase(sumIt);
        --rec.activeSums;
      }
      const int nextBound = ref.bound + 1;
      if (nextBound >= rec.tot->numInputs()) continue;  // "<= k" is vacuous
      const Lit next =
          ~rec.tot->outputs()[static_cast<std::size_t>(nextBound)];
      active[next] += wmin;
      if (sums.emplace(next, SumRef{ref.totalizer, nextBound}).second) {
        ++rec.activeSums;
      }
    }

    // New soft cardinality constraint over this core: "at most one of
    // these violated" at weight wmin (a singleton core has nothing to
    // count — its violation is fully charged already).
    if (core.size() >= 2) {
      std::vector<Lit> violated;
      violated.reserve(core.size());
      for (const Lit a : core) violated.push_back(~a);
      TotRec rec;
      const int id = static_cast<int>(totalizers.size());
      // Inputs that are outputs of earlier totalizers pin those
      // structures until this one retires.
      for (const Lit a : core) {
        const auto ownerIt = outputOwner.find(a.var());
        if (ownerIt == outputOwner.end()) continue;
        if (std::find(rec.deps.begin(), rec.deps.end(), ownerIt->second) !=
            rec.deps.end()) {
          continue;
        }
        rec.deps.push_back(ownerIt->second);
        ++totalizers[static_cast<std::size_t>(ownerIt->second)].pins;
      }
      rec.scope = session.beginScope();
      rec.tot = std::make_unique<Totalizer>(session.sink(), violated,
                                            /*bothPolarities=*/false);
      session.endScope(rec.scope);
      for (const Lit o : rec.tot->outputs()) outputOwner[o.var()] = id;
      const Lit slit = ~rec.tot->outputs()[1];
      active[slit] += wmin;
      sums.emplace(slit, SumRef{id, 1});
      rec.activeSums = 1;
      totalizers.push_back(std::move(rec));
    }

    // Retire totalizers whose every bound has been charged *and* that
    // no live successor counts: their constraint no longer backs any
    // assumption, so the clauses and counting variables are reclaimed
    // wholesale. Retiring a dependent unpins its dependencies, which
    // may cascade.
    std::vector<int> retireWork = touched;
    while (!retireWork.empty()) {
      const int id = retireWork.back();
      retireWork.pop_back();
      TotRec& rec = totalizers[static_cast<std::size_t>(id)];
      if (rec.activeSums > 0 || rec.pins > 0 || !rec.scope.defined()) {
        continue;
      }
      session.retire(rec.scope);
      rec.scope = ScopeHandle{};
      rec.tot.reset();
      for (const int dep : rec.deps) {
        --totalizers[static_cast<std::size_t>(dep)].pins;
        retireWork.push_back(dep);
      }
      rec.deps.clear();
    }
  }
}

}  // namespace msu
