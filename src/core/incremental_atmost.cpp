#include "core/incremental_atmost.h"

#include <algorithm>

#include <cassert>

namespace msu {

void IncrementalAtMost::assertAtMost(ClauseSink& sink,
                                     const std::vector<Lit>& lits, int k) {
  ++num_asserted_;
  const int n = static_cast<int>(lits.size());
  if (k >= n) return;
  if (!reuse_ || (enc_ != CardEncoding::Sorter &&
                  enc_ != CardEncoding::Totalizer)) {
    encodeAtMost(sink, lits, k, enc_);
    return;
  }
  assert(lits.size() >= covered_.size());
  if (enc_ == CardEncoding::Sorter) {
    if (lits != covered_) {
      sorter_outputs_ = buildSortingNetwork(sink, lits);
      covered_ = lits;
    }
    if (k < 0) {
      sink.addClause(std::initializer_list<Lit>{});
      return;
    }
    sink.addClause({~sorter_outputs_[static_cast<std::size_t>(k)]});
    return;
  }
  // Totalizer: extend with the new suffix, then assert the unit. Suffix
  // extension requires `lits` to extend `covered_` as a prefix (callers
  // provide relaxation-ordered literals); fall back to a fresh tree if
  // the prefix property ever fails.
  const bool prefixOk =
      lits.size() >= covered_.size() &&
      std::equal(covered_.begin(), covered_.end(), lits.begin());
  if (!totalizer_ || !prefixOk) {
    totalizer_.emplace(sink, lits);
    covered_ = lits;
  } else if (lits.size() > covered_.size()) {
    const std::span<const Lit> suffix(lits.data() + covered_.size(),
                                      lits.size() - covered_.size());
    totalizer_->addInputs(suffix);
    covered_ = lits;
  }
  if (k < 0) {
    sink.addClause(std::initializer_list<Lit>{});
    return;
  }
  sink.addClause({~totalizer_->outputs()[static_cast<std::size_t>(k)]});
}

AssumableAtMost::AssumableAtMost(ClauseSink& sink, std::vector<Lit> lits,
                                 CardEncoding enc)
    : sink_(&sink), lits_(std::move(lits)), enc_(enc) {
  if (enc_ == CardEncoding::Sorter) {
    sorter_outputs_ = buildSortingNetwork(sink, lits_);
  } else if (enc_ == CardEncoding::Totalizer) {
    Totalizer tot(sink, lits_);
    sorter_outputs_ = tot.outputs();
  }
  cache_.resize(lits_.size() + 1);
}

std::optional<Lit> AssumableAtMost::boundLit(int k) {
  const int n = static_cast<int>(lits_.size());
  if (k >= n) return std::nullopt;
  assert(k >= 0);
  if (enc_ == CardEncoding::Sorter || enc_ == CardEncoding::Totalizer) {
    return ~sorter_outputs_[static_cast<std::size_t>(k)];
  }
  if (std::optional<Lit>& c = cache_[static_cast<std::size_t>(k)]) return *c;
  Lit act;
  if (enc_ == CardEncoding::Bdd) {
    // The BDD root is a biconditional for the constraint: assume it.
    act = buildAtMostBdd(*sink_, lits_, k);
  } else {
    act = posLit(sink_->newVar());
    encodeAtMost(*sink_, lits_, k, enc_, act);
  }
  cache_[static_cast<std::size_t>(k)] = act;
  return act;
}

}  // namespace msu
