#include "core/incremental_atmost.h"

#include <algorithm>
#include <cassert>

namespace msu {

void IncrementalAtMost::retireCurrent(ClauseSink& sink) {
  if (!scope_.defined()) return;
  sink.retireScope(scope_);
  scope_ = ScopeHandle{};
  scope_bound_ = -1;
  scope_enforced_ = true;
  covered_.clear();
  outputs_.clear();
}

void IncrementalAtMost::coverWithTotalizer(ClauseSink& sink,
                                           const std::vector<Lit>& lits) {
  // Suffix extension requires `lits` to extend `covered_` as a prefix
  // (callers provide relaxation-ordered literals); fall back to a fresh
  // tree if the prefix property ever fails.
  const bool prefixOk =
      lits.size() >= covered_.size() &&
      std::equal(covered_.begin(), covered_.end(), lits.begin());
  if (!totalizer_ || !prefixOk) {
    totalizer_.emplace(sink, lits);
    covered_ = lits;
  } else if (lits.size() > covered_.size()) {
    const std::span<const Lit> suffix(lits.data() + covered_.size(),
                                      lits.size() - covered_.size());
    totalizer_->addInputs(suffix);
    covered_ = lits;
  }
}

void IncrementalAtMost::assertAtMost(ClauseSink& sink,
                                     const std::vector<Lit>& lits, int k) {
  ++num_asserted_;
  const int n = static_cast<int>(lits.size());
  if (k >= n) return;
  assert(lits.size() >= covered_.size());

  if (reuse_ && enc_ == CardEncoding::Totalizer) {
    // Permanent incremental structure; the monotone bound units live in
    // a permanent scope of their own rather than as raw units. The
    // scope is never retired and stays enforced, so the bounds behave
    // as before — but being guarded, the units are restrictions the
    // solver can tell apart from hard-clause consequences, which keeps
    // learnt-clause sharing sound (see sat/share.h).
    coverWithTotalizer(sink, lits);
    if (!unit_scope_.defined()) {
      unit_scope_ = sink.beginScope();
    } else {
      sink.reopenScope(unit_scope_);
    }
    if (k < 0) {
      sink.addClause(std::initializer_list<Lit>{});
    } else {
      sink.addClause({~totalizer_->outputs()[static_cast<std::size_t>(k)]});
    }
    sink.endScope(unit_scope_);
    return;
  }

  if (reuse_ && enc_ == CardEncoding::Sorter) {
    // One network per literal set, wrapped in a scope together with its
    // bound units; growth retires the stale network wholesale.
    if (!scope_.defined() || lits != covered_) {
      retireCurrent(sink);
      scope_ = sink.beginScope();
      outputs_ = buildSortingNetwork(sink, lits);
      covered_ = lits;
    } else {
      sink.reopenScope(scope_);
    }
    if (k < 0) {
      sink.addClause(std::initializer_list<Lit>{});
    } else {
      sink.addClause({~outputs_[static_cast<std::size_t>(k)]});
    }
    sink.endScope(scope_);
    return;
  }

  // No reuse (or a non-incremental encoding): each call re-encodes into
  // a fresh scope, physically retiring the predecessor instead of
  // leaving it behind as dead hard clauses.
  retireCurrent(sink);
  scope_ = sink.beginScope();
  encodeAtMost(sink, lits, k, enc_);
  sink.endScope(scope_);
  covered_ = lits;
  scope_bound_ = k;
}

std::optional<Lit> IncrementalAtMost::assumeAtMost(
    ClauseSink& sink, const std::vector<Lit>& lits, int k) {
  ++num_asserted_;
  const int n = static_cast<int>(lits.size());
  if (k >= n) {
    // Trivial bound: nothing to assume; park the live scope.
    if (scope_.defined() && scope_enforced_) {
      sink.setScopeEnforced(scope_, false);
      scope_enforced_ = false;
    }
    return std::nullopt;
  }
  assert(k >= 0);

  if (enc_ == CardEncoding::Totalizer) {
    coverWithTotalizer(sink, lits);
    return ~totalizer_->outputs()[static_cast<std::size_t>(k)];
  }

  if (enc_ == CardEncoding::Sorter) {
    if (!scope_.defined() || lits != covered_) {
      retireCurrent(sink);
      scope_ = sink.beginScope();
      outputs_ = buildSortingNetwork(sink, lits);
      covered_ = lits;
      sink.endScope(scope_);
    }
    if (!scope_enforced_) {
      sink.setScopeEnforced(scope_, true);
      scope_enforced_ = true;
    }
    return ~outputs_[static_cast<std::size_t>(k)];
  }

  // Bound-specific encodings (Bdd/Sequential/...): one scope per
  // (set, bound); any change retires the predecessor. Enforcement rides
  // on the auto-assumed activator, so there is nothing extra to assume.
  if (!scope_.defined() || lits != covered_ || k != scope_bound_) {
    retireCurrent(sink);
    scope_ = sink.beginScope();
    encodeAtMost(sink, lits, k, enc_);
    sink.endScope(scope_);
    covered_ = lits;
    scope_bound_ = k;
    scope_enforced_ = true;
  } else if (!scope_enforced_) {
    sink.setScopeEnforced(scope_, true);
    scope_enforced_ = true;
  }
  return std::nullopt;
}

AssumableAtMost::AssumableAtMost(ClauseSink& sink, std::vector<Lit> lits,
                                 CardEncoding enc)
    : sink_(&sink), lits_(std::move(lits)), enc_(enc) {
  if (enc_ == CardEncoding::Sorter) {
    outputs_ = buildSortingNetwork(sink, lits_);
  } else if (enc_ == CardEncoding::Totalizer) {
    Totalizer tot(sink, lits_);
    outputs_ = tot.outputs();
  }
  scopes_.assign(lits_.size() + 1, ScopeHandle{});
}

std::optional<Lit> AssumableAtMost::boundLit(int k) {
  const int n = static_cast<int>(lits_.size());
  if (k >= n) return std::nullopt;
  assert(k >= 0);
  if (enc_ == CardEncoding::Sorter || enc_ == CardEncoding::Totalizer) {
    return ~outputs_[static_cast<std::size_t>(k)];
  }
  ScopeHandle& scope = scopes_[static_cast<std::size_t>(k)];
  if (!scope.defined()) {
    // Build the bound in its own *disabled* scope: the activator is the
    // assumption handle (assuming it overrides the automatic negative
    // assumption), and retirement is one retireScope away.
    scope = sink_->beginScope();
    if (enc_ == CardEncoding::Bdd) {
      // The BDD root is a biconditional for the constraint; asserting
      // it under the scope guard yields act -> constraint.
      const Lit root = buildAtMostBdd(*sink_, lits_, k);
      sink_->addClause({root});
    } else {
      encodeAtMost(*sink_, lits_, k, enc_);
    }
    sink_->endScope(scope);
    sink_->setScopeEnforced(scope, false);
  }
  // The scope's activator doubles as the assumption literal — an
  // explicit handle-to-literal escape.
  return scope.activator();
}

void AssumableAtMost::pruneOutside(int lo, int hi) {
  for (int k = 0; k < static_cast<int>(scopes_.size()); ++k) {
    if (k >= lo && k < hi) continue;
    ScopeHandle& scope = scopes_[static_cast<std::size_t>(k)];
    if (!scope.defined()) continue;
    sink_->retireScope(scope);
    scope = ScopeHandle{};
  }
}

}  // namespace msu
