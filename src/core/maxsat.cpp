#include "core/maxsat.h"

namespace msu {

const char* toString(MaxSatStatus st) {
  switch (st) {
    case MaxSatStatus::Optimum:
      return "OPTIMUM";
    case MaxSatStatus::UnsatisfiableHard:
      return "UNSATISFIABLE";
    case MaxSatStatus::Unknown:
      return "UNKNOWN";
  }
  return "?";
}

}  // namespace msu
