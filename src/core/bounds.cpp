#include "core/bounds.h"

#include "core/soft_tracker.h"

namespace msu {

DisjointCoresResult disjointCores(const WcnfFormula& input,
                                  const Budget& budget) {
  DisjointCoresResult result;
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return result;
  const WcnfFormula& formula = *reduced;

  Solver sat;
  sat.setBudget(budget);
  SoftTracker tracker(sat, formula);
  if (!sat.okay()) {
    // Hard clauses already unsatisfiable: every "core" is within the
    // hard part; no soft bound is derivable this way.
    return result;
  }

  while (true) {
    ++result.satCalls;
    const lbool st = sat.solve(tracker.assumptions());
    if (st == lbool::Undef) return result;  // incomplete
    if (st == lbool::True) {
      result.complete = true;
      return result;
    }
    const std::vector<int> coreSoft = tracker.coreSoftIndices(sat.core());
    if (coreSoft.empty()) {
      // Unsatisfiable independently of the softs: hard part unsat.
      result.complete = true;
      return result;
    }
    // Remove the core's clauses from further consideration; the next
    // core is therefore clause-disjoint from all previous ones.
    for (int i : coreSoft) tracker.relax(i);
    result.cores.push_back(coreSoft);
  }
}

std::optional<BlockingBoundResult> blockingUpperBound(
    const WcnfFormula& input, const Budget& budget) {
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return std::nullopt;
  const WcnfFormula& formula = *reduced;

  Solver sat;
  sat.setBudget(budget);
  SoftTracker tracker(sat, formula);
  for (int i = 0; i < tracker.numSoft(); ++i) tracker.relax(i);
  if (!sat.okay()) return std::nullopt;

  const lbool st = sat.solve();
  if (st != lbool::True) return std::nullopt;

  BlockingBoundResult out;
  out.costUpperBound = tracker.relaxedFalsifiedCost(formula, sat.model());
  out.model = tracker.originalModel(sat.model());
  return out;
}

}  // namespace msu
