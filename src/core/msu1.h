/// \file msu1.h
/// \brief The msu1 algorithm — Fu & Malik's original core-guided MaxSAT
///        procedure (SAT 2006), the algorithm the paper contrasts msu4
///        against: every unsatisfiable core gets a *fresh* set of
///        blocking variables (so a clause may accumulate several), tied
///        together by an exactly-one constraint, and the optimum equals
///        the number of cores relaxed before the formula turns
///        satisfiable.

#pragma once

#include "core/maxsat.h"

namespace msu {

/// The msu1 / Fu–Malik engine.
class Msu1Solver final : public MaxSatSolver {
 public:
  explicit Msu1Solver(MaxSatOptions options = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

 private:
  MaxSatOptions opts_;
};

}  // namespace msu
