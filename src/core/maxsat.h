/// \file maxsat.h
/// \brief Public MaxSAT solver interface shared by every engine in the
///        library: the core-guided family (msu1/msu3/msu4), the
///        SAT-based linear/binary searches, the PBO baseline and the
///        branch-and-bound baseline.
///
/// ## The oracle-session model
///
/// Every SAT-based engine runs on one OracleSession
/// (core/oracle_session.h): a single incremental CDCL oracle whose
/// clause database persists — learnt clauses included — across the
/// iterations of the search, mirroring the paper's reuse of learnt
/// information between iterations. Cardinality/PB structures the
/// search outgrows are not abandoned inside that database: they live
/// in *encoding scopes* (see sink.h) and are physically retired — the
/// clauses deleted, their auxiliary variables recycled — the moment a
/// re-encode supersedes them. `MaxSatResult::satStats` surfaces the
/// lifecycle counters (retired scopes/clauses, reclaimed bytes,
/// recycled variables) alongside the propagation-core counters.
///
/// ## Reconstruction contract (inprocessing round two)
///
/// With Solver::Options::inprocess, the oracle may eliminate or
/// substitute auxiliary variables mid-search; the solver replays its
/// witness stack over every satisfying assignment before publishing
/// it, so `MaxSatResult::model` is always a total assignment over the
/// original variables and engines never observe removal. Soft-clause
/// selectors are frozen and encoding variables are scope-owned, so
/// neither is ever removed: cores keep naming the selectors engines
/// track, and scope retirement never invalidates a witness. The full
/// contract — who may be removed, what restores a variable, what
/// disables removal — lives in src/sat/solver.h.

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "cnf/wcnf.h"
#include "encodings/cardinality.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "sat/budget.h"
#include "sat/solver.h"
#include "sat/stats.h"

namespace msu {

/// Outcome of a MaxSAT solve.
enum class MaxSatStatus {
  Optimum,            ///< optimum found; `cost` and `model` are valid
  UnsatisfiableHard,  ///< the hard clauses alone are unsatisfiable
  Unknown,            ///< budget exhausted; only the bounds are valid
};

/// Short human-readable status name.
[[nodiscard]] const char* toString(MaxSatStatus st);

/// Result of a MaxSAT solve. Cost = total weight of falsified soft
/// clauses (so "satisfied clauses", the paper's objective, is
/// `numSoft - cost` for unweighted instances).
struct MaxSatResult {
  MaxSatStatus status = MaxSatStatus::Unknown;
  Weight cost = 0;  ///< optimum cost when status == Optimum

  /// Best bounds on the cost established before stopping (always valid;
  /// equal to `cost` on Optimum).
  Weight lowerBound = 0;
  Weight upperBound = 0;

  /// Witnessing assignment over the *original* variables (complete) when
  /// status == Optimum, or the best model found when Unknown with a
  /// finite upper bound.
  Assignment model;

  /// Diagnostics.
  std::int64_t iterations = 0;  ///< main-loop iterations
  std::int64_t coresFound = 0;  ///< unsatisfiable cores extracted
  std::int64_t satCalls = 0;    ///< SAT solver invocations
  SolverStats satStats;         ///< cumulative CDCL statistics

  /// Paper-style objective for unweighted instances.
  [[nodiscard]] Weight numSatisfied(const WcnfFormula& f) const {
    return static_cast<Weight>(f.numSoft()) - cost;
  }
};

/// Options common to the SAT-based MaxSAT engines.
struct MaxSatOptions {
  /// Cooperative budget (wall clock / conflicts); engines return Unknown
  /// with valid bounds when it runs out.
  Budget budget;

  /// Cardinality encoding for the bound constraints. The paper's msu4 v1
  /// is Bdd, v2 is Sorter.
  CardEncoding encoding = CardEncoding::Sorter;

  /// msu4: add the optional "at least one new blocking variable is true"
  /// clause after each core (Algorithm 1, line 19; "optional, but
  /// experiments suggest it is most often useful").
  bool msu4AtLeastOne = true;

  /// Reuse sorting networks / extend totalizers across iterations when
  /// the blocking-variable set allows it, instead of re-encoding. When
  /// a re-encode is unavoidable (or reuse is off), the superseded
  /// structure's scope is retired: its clauses are physically deleted
  /// and its auxiliary variables recycled.
  bool reuseEncodings = true;

  /// Rounds of core trimming (re-solve under the core and adopt the
  /// smaller final conflict) before relaxing a core; 0 disables. The
  /// paper notes msu4 depends on the solver "identifying small
  /// unsatisfiable cores" — this is the standard countermeasure.
  int trimCoreRounds = 0;

  /// Tighten the SAT-iteration bound with the model's true cost (number
  /// of soft clauses actually falsified) instead of the raw count of
  /// blocking variables assigned 1. Always sound; on by default.
  bool tightenWithModelCost = true;

  /// Underlying CDCL parameters.
  Solver::Options sat;

  /// Progress callback, invoked whenever an engine improves a bound:
  /// `(lower, upper)` in cost terms, with `upper == numSoft + 1` until a
  /// first model exists. Engines guarantee both sequences are monotone
  /// (lower non-decreasing, upper non-increasing). Leave empty for none.
  std::function<void(Weight lower, Weight upper)> onBounds;

  /// Optional live-progress sink (non-owning; must outlive the run).
  /// OracleSession streams conflict/solve-call/memory deltas into it
  /// after every oracle call, so an observer thread (SolveService::
  /// poll(), a UI) can watch a running job without any callback
  /// plumbing. Bounds flow in via onBounds — the SolveService installs
  /// a wrapper that feeds both the sink and any caller callback.
  obs::ProgressSink* progress = nullptr;

  /// Optional metrics registry (non-owning; must outlive the run).
  /// When set, OracleSession observes every oracle call's latency into
  /// the `msu_oracle_solve_us` histogram. Left null (the default) the
  /// sessions take no clock readings at all.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Abstract MaxSAT engine.
class MaxSatSolver {
 public:
  virtual ~MaxSatSolver() = default;

  /// Engine name as used in tables ("msu4-v2", "maxsatz-like", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Solves the instance. Weighted instances are reduced to unweighted
  /// ones by clause duplication where supported; engines document their
  /// limits.
  [[nodiscard]] virtual MaxSatResult solve(const WcnfFormula& formula) = 0;
};

}  // namespace msu
