/// \file wmsu1.h
/// \brief Weighted core-guided MaxSAT: Fu–Malik with weight splitting
///        (the WPM1 scheme of Ansótegui, Bonet & Levy). The DATE'08
///        paper treats only unweighted MaxSAT and its §5 asks for the
///        msu family to be "further developed" — native weighted support
///        is the canonical first extension, implemented here so weighted
///        WCNF inputs need no clause duplication.
///
/// Scheme: solve under selectors; each unsatisfiable core is charged its
/// minimum member weight w_min. Every core clause of weight w splits
/// into a residual copy of weight w - w_min (no new blocking variable)
/// and a relaxed copy of weight w_min carrying a fresh blocking
/// variable; an exactly-one constraint over the fresh blocking variables
/// is added and the lower bound rises by w_min. A satisfiable outcome
/// certifies the accumulated charge as the optimum cost.

#pragma once

#include "core/maxsat.h"

namespace msu {

/// The weighted Fu–Malik engine.
class Wmsu1Solver final : public MaxSatSolver {
 public:
  explicit Wmsu1Solver(MaxSatOptions options = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

 private:
  MaxSatOptions opts_;
};

}  // namespace msu
