/// \file bmo.h
/// \brief Boolean Multilevel Optimization (BMO): lexicographic MaxSAT
///        for instances whose weights form strata, each weight strictly
///        dominating the total of everything below it (Marques-Silva,
///        Argelich, Graça & Lynce). Design-debugging and covering
///        problems naturally produce such weight ladders ("first
///        minimize error sites, then minimize disturbed outputs").
///
/// The solver checks the BMO condition, then works down the strata:
/// each level is a plain unit-weight partial MaxSAT problem (solved by
/// any unweighted engine) whose optimum is frozen as a hard cardinality
/// constraint before the next level starts. For a k-level instance this
/// is k easy unweighted solves instead of one weighted solve over
/// weights that may span many orders of magnitude.

#pragma once

#include <vector>

#include "core/maxsat.h"

namespace msu {

/// Checks the BMO property: group the distinct weights in decreasing
/// order w1 > w2 > ...; require for every prefix that `wi` exceeds the
/// total weight of all softs with smaller weights. Returns the strata
/// (distinct weights, decreasing) when satisfied, empty otherwise.
/// Unweighted instances are trivially BMO (one stratum).
[[nodiscard]] std::vector<Weight> bmoStrata(const WcnfFormula& formula);

/// The lexicographic / multilevel engine. Requires the BMO property;
/// instances without it are delegated to a weighted-native fallback
/// (OLL) so `solve` is total.
class BmoSolver final : public MaxSatSolver {
 public:
  explicit BmoSolver(MaxSatOptions options = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

  /// Number of strata the last solve decomposed into (0 when the OLL
  /// fallback ran).
  [[nodiscard]] int lastStrata() const { return last_strata_; }

 private:
  MaxSatOptions opts_;
  int last_strata_ = 0;
};

}  // namespace msu
