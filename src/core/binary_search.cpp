#include "core/binary_search.h"

#include "core/incremental_atmost.h"
#include "core/soft_tracker.h"
#include "encodings/sink.h"

namespace msu {

BinarySearchSolver::BinarySearchSolver(MaxSatOptions options)
    : opts_(options) {}

std::string BinarySearchSolver::name() const {
  return std::string("binary-") + toString(opts_.encoding);
}

MaxSatResult BinarySearchSolver::solve(const WcnfFormula& input) {
  MaxSatResult result;
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return result;
  const WcnfFormula& formula = *reduced;
  const Weight m = formula.numSoft();

  Solver sat(opts_.sat);
  sat.setBudget(opts_.budget);
  SoftTracker tracker(sat, formula);
  SolverSink sink(sat);
  for (int i = 0; i < tracker.numSoft(); ++i) tracker.relax(i);

  if (!sat.okay()) {
    result.status = MaxSatStatus::UnsatisfiableHard;
    result.satStats = sat.stats();
    return result;
  }

  Weight lower = 0;
  Weight upper = m + 1;  // no model yet
  Assignment bestModel;

  auto finish = [&](MaxSatStatus st) {
    result.status = st;
    result.lowerBound = lower;
    result.upperBound = std::min(upper, m);
    if (st == MaxSatStatus::Optimum) {
      result.cost = upper;
      result.model = std::move(bestModel);
    } else if (upper <= m) {
      result.model = std::move(bestModel);
    }
    result.satStats = sat.stats();
    return result;
  };

  // Initial model establishes feasibility and the first upper bound.
  ++result.iterations;
  ++result.satCalls;
  {
    const lbool st = sat.solve();
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown);
    if (st == lbool::False) return finish(MaxSatStatus::UnsatisfiableHard);
    upper = tracker.relaxedFalsifiedCost(formula, sat.model());
    bestModel = tracker.originalModel(sat.model());
  }

  AssumableAtMost bound(sink, tracker.blockingLits(), opts_.encoding);

  while (lower < upper) {
    ++result.iterations;
    ++result.satCalls;
    const Weight mid = lower + (upper - lower) / 2;
    std::vector<Lit> assumps;
    if (std::optional<Lit> b = bound.boundLit(static_cast<int>(mid))) {
      assumps.push_back(*b);
    }
    const lbool st = sat.solve(assumps);
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown);
    if (st == lbool::True) {
      const Weight nu = tracker.relaxedFalsifiedCost(formula, sat.model());
      if (nu < upper) {
        upper = nu;
        bestModel = tracker.originalModel(sat.model());
        if (opts_.onBounds) opts_.onBounds(lower, upper);
      }
    } else {
      ++result.coresFound;
      lower = mid + 1;
      if (opts_.onBounds) opts_.onBounds(lower, upper);
    }
  }
  return finish(MaxSatStatus::Optimum);
}

}  // namespace msu
