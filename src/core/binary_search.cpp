#include "core/binary_search.h"

#include "core/incremental_atmost.h"
#include "core/oracle_session.h"

namespace msu {

BinarySearchSolver::BinarySearchSolver(MaxSatOptions options)
    : opts_(options) {}

std::string BinarySearchSolver::name() const {
  return std::string("binary-") + toString(opts_.encoding);
}

MaxSatResult BinarySearchSolver::solve(const WcnfFormula& input) {
  MaxSatResult result;
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return result;
  const WcnfFormula& formula = *reduced;
  const Weight m = formula.numSoft();

  OracleSession session(opts_);
  SoftTracker& tracker = session.trackSofts(formula);
  for (int i = 0; i < tracker.numSoft(); ++i) tracker.relax(i);

  if (!session.okay()) {
    result.status = MaxSatStatus::UnsatisfiableHard;
    session.exportStats(result);
    return result;
  }

  Weight lower = 0;
  Weight upper = m + 1;  // no model yet
  Assignment bestModel;

  auto finish = [&](MaxSatStatus st) {
    result.status = st;
    result.lowerBound = lower;
    result.upperBound = std::min(upper, m);
    if (st == MaxSatStatus::Optimum) {
      result.cost = upper;
      result.model = std::move(bestModel);
    } else if (upper <= m) {
      result.model = std::move(bestModel);
    }
    session.exportStats(result);
    return result;
  };

  // Initial model establishes feasibility and the first upper bound.
  ++result.iterations;
  {
    const lbool st = session.solve();
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown);
    if (st == lbool::False) return finish(MaxSatStatus::UnsatisfiableHard);
    upper = tracker.relaxedFalsifiedCost(formula, session.sat().model());
    bestModel = tracker.originalModel(session.sat().model());
  }

  AssumableAtMost bound(session.sink(), tracker.blockingLits(),
                        opts_.encoding);

  while (lower < upper) {
    ++result.iterations;
    const Weight mid = lower + (upper - lower) / 2;
    std::vector<Lit> assumps;
    if (std::optional<Lit> b = bound.boundLit(static_cast<int>(mid))) {
      assumps.push_back(*b);
    }
    const lbool st = session.solve(assumps);
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown);
    if (st == lbool::True) {
      const Weight nu =
          tracker.relaxedFalsifiedCost(formula, session.sat().model());
      if (nu < upper) {
        upper = nu;
        bestModel = tracker.originalModel(session.sat().model());
        if (opts_.onBounds) opts_.onBounds(lower, upper);
      }
    } else {
      ++result.coresFound;
      lower = mid + 1;
      if (opts_.onBounds) opts_.onBounds(lower, upper);
    }
    // The interval shrank: bound structures the search can no longer
    // revisit are physically retired (and their variables recycled).
    bound.pruneOutside(static_cast<int>(lower), static_cast<int>(upper));
  }
  return finish(MaxSatStatus::Optimum);
}

}  // namespace msu
