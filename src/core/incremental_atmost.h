/// \file incremental_atmost.h
/// \brief Helpers that manage cardinality constraints across the
///        iterations of a core-guided search: extending totalizers and
///        reusing sorting networks when possible, and re-encoding into
///        a fresh sink scope (retiring the predecessor physically)
///        when not.

#pragma once

#include <optional>
#include <vector>

#include "encodings/cardinality.h"
#include "encodings/sink.h"
#include "encodings/totalizer.h"

namespace msu {

/// Manages a sequence of constraints `sum(lits) <= k` where the literal
/// set only grows across calls. Two enforcement styles:
///
///  * assertAtMost — hard, monotonically tightening bounds (msu4's
///    Algorithm 1 line 30, linear search). Totalizers extend in place
///    with permanent bound units; everything else lives in an encoding
///    scope whose activator the solver auto-assumes, and a re-encode
///    retires the predecessor scope (physical deletion + variable
///    recycling) instead of leaking it.
///  * assumeAtMost — assumption-enforced bounds that may also loosen
///    (msu3's lambda search). Returns the extra literal to assume this
///    solve, if any; scoped structures are enforced through their
///    activator.
class IncrementalAtMost {
 public:
  IncrementalAtMost(CardEncoding enc, bool reuse)
      : enc_(enc), reuse_(reuse) {}

  /// Adds clauses enforcing `sum(lits) <= k` from now on. `lits` must
  /// contain every literal passed in earlier calls (append-only
  /// growth), and for scoped encodings the bound must not loosen.
  ///
  /// Bound restrictions are never emitted as raw (unguarded) clauses:
  /// even the incremental totalizer's monotone bound units live in a
  /// scope of their own (permanent, always enforced). This keeps every
  /// non-consequence clause guarded, which is what makes the parallel
  /// portfolio's learnt-clause export filter sound — see sat/share.h.
  void assertAtMost(ClauseSink& sink, const std::vector<Lit>& lits, int k);

  /// Makes `sum(lits) <= k` hold for the next solve(s): re-encodes (and
  /// retires the stale structure) as needed and returns the literal to
  /// assume, when the encoding needs one beyond its auto-assumed
  /// activator. A trivial bound (k >= |lits|) disables the structure.
  [[nodiscard]] std::optional<Lit> assumeAtMost(ClauseSink& sink,
                                                const std::vector<Lit>& lits,
                                                int k);

  /// Number of constraints asserted/assumed so far.
  [[nodiscard]] int numAsserted() const { return num_asserted_; }

 private:
  /// Retires the live scope (if any) and forgets its structure.
  void retireCurrent(ClauseSink& sink);

  /// Extends (or rebuilds) the unscoped totalizer to cover `lits`.
  void coverWithTotalizer(ClauseSink& sink, const std::vector<Lit>& lits);

  CardEncoding enc_;
  bool reuse_;
  int num_asserted_ = 0;
  std::vector<Lit> covered_;            // literal set of the cached structure
  std::vector<Lit> outputs_;            // sorter outputs (scoped)
  std::optional<Totalizer> totalizer_;  // unscoped incremental totalizer
  ScopeHandle scope_;                   // live structure scope
  ScopeHandle unit_scope_;    // permanent scope for totalizer bound units
  int scope_bound_ = -1;      // bound baked into a per-(set,k) scope
  bool scope_enforced_ = true;
};

/// Produces *assumption* literals enforcing `sum(lits) <= k` when
/// assumed — the machinery behind the binary-search engine, which must
/// both tighten and loosen bounds. The literal set is fixed at
/// construction. Output-based encodings (Sorter/Totalizer) share one
/// permanent structure; the others build one disabled scope per bound,
/// whose activator is the assumption handle, and `pruneOutside` retires
/// scopes whose bound the search can no longer revisit.
class AssumableAtMost {
 public:
  AssumableAtMost(ClauseSink& sink, std::vector<Lit> lits, CardEncoding enc);

  /// Literal that enforces `sum <= k` when assumed; `nullopt` when the
  /// bound is trivial (k >= |lits|).
  [[nodiscard]] std::optional<Lit> boundLit(int k);

  /// Physically retires cached per-bound scopes with k outside
  /// [lo, hi) — sound once the search has shrunk its interval to
  /// [lo, hi). No-op for the shared output-based encodings.
  void pruneOutside(int lo, int hi);

 private:
  ClauseSink* sink_;
  std::vector<Lit> lits_;
  CardEncoding enc_;
  std::vector<Lit> outputs_;         // Sorter/Totalizer: shared outputs
  std::vector<ScopeHandle> scopes_;  // per-k bound scope (undefined = none)
};

}  // namespace msu
