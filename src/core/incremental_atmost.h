/// \file incremental_atmost.h
/// \brief Helpers that manage cardinality constraints across the
///        iterations of a core-guided search: re-encoding when necessary,
///        reusing sorting networks / extending totalizers when possible.

#pragma once

#include <optional>
#include <vector>

#include "encodings/cardinality.h"
#include "encodings/sink.h"
#include "encodings/totalizer.h"

namespace msu {

/// Asserts a sequence of constraints `sum(lits) <= k` as *hard* clauses,
/// where across calls the literal set only grows (append-only) and the
/// bounds only tighten for a fixed set. This is exactly msu4's usage
/// pattern (Algorithm 1, line 30).
///
/// Reuse policy (when enabled):
///  * Sorter: if the literal set is unchanged, reuse the existing
///    network and add only the unit `~out[k]`; rebuild on growth.
///  * Totalizer: extend the tree with the new literals, then add the
///    unit — no re-encoding ever.
///  * Bdd / Sequential / Pairwise: re-encode each call.
class IncrementalAtMost {
 public:
  IncrementalAtMost(CardEncoding enc, bool reuse)
      : enc_(enc), reuse_(reuse) {}

  /// Adds clauses enforcing `sum(lits) <= k`. `lits` must contain every
  /// literal passed in earlier calls (append-only growth).
  void assertAtMost(ClauseSink& sink, const std::vector<Lit>& lits, int k);

  /// Number of constraints asserted so far.
  [[nodiscard]] int numAsserted() const { return num_asserted_; }

 private:
  CardEncoding enc_;
  bool reuse_;
  int num_asserted_ = 0;
  std::vector<Lit> covered_;           // literal set of the cached structure
  std::vector<Lit> sorter_outputs_;    // valid when enc_ == Sorter
  std::optional<Totalizer> totalizer_; // valid when enc_ == Totalizer
};

/// Produces *assumption* literals enforcing `sum(lits) <= k` when
/// assumed — the machinery behind the binary-search engine, which must
/// both tighten and loosen bounds. The literal set is fixed at
/// construction.
class AssumableAtMost {
 public:
  AssumableAtMost(ClauseSink& sink, std::vector<Lit> lits, CardEncoding enc);

  /// Literal that enforces `sum <= k` when assumed; `nullopt` when the
  /// bound is trivial (k >= |lits|).
  [[nodiscard]] std::optional<Lit> boundLit(int k);

 private:
  ClauseSink* sink_;
  std::vector<Lit> lits_;
  CardEncoding enc_;
  std::vector<Lit> sorter_outputs_;      // Sorter/Totalizer: shared outputs
  std::vector<std::optional<Lit>> cache_;  // Bdd/Sequential: per-k activator
};

}  // namespace msu
