/// \file oracle_session.h
/// \brief The shared incremental-oracle layer under every SAT-based
///        MaxSAT engine: one object owning the CDCL solver, the scoped
///        clause sink, the (optional) soft-clause tracker and the
///        budget, so engines state their algorithm and nothing else.
///
/// Before this layer existed, each engine hand-rolled the same
/// lifecycle plumbing: construct a solver, wire the budget, load hard
/// clauses, attach selectors, track an `std::optional<Lit> activator`
/// plus an `activeBound` for its cardinality structure, unit-assert
/// stale activators to fake retirement, and copy the statistics out at
/// every exit point. The session centralises all of it on top of the
/// solver's native encoding-scope machinery (physical retirement +
/// variable recycling; see solver.h), mirroring the source paper's
/// philosophy of reusing learnt information across the iterations of a
/// core-guided search through one incremental oracle interface.
///
/// ## Prefix-stability contract (warm-started oracle calls)
///
/// With Solver::Options::reuse_trail the solver keeps its trail across
/// solve() boundaries and re-propagates only the suffix of the
/// assumption sequence that changed since the previous call (see
/// solver.h). The session keeps that reusable prefix maximal by
/// emitting assumptions in a *canonical stable order*, every call:
///
///  1. tracker assumptions first, in ascending selector-variable order
///     (SoftTracker::assumptions() enforces the order; relaxation only
///     *removes* elements, so the prefix up to the first newly relaxed
///     clause survives verbatim),
///  2. the caller's `extra` assumptions next (engines keep these
///     stable-ordered too — bound literals change only when the bound
///     moves),
///  3. live scope activators last, appended by the solver itself in
///     scope-creation order.
///
/// Engines must not reshuffle assumption sets between calls: a
/// permutation is semantically identical but destroys the common
/// prefix and with it the reuse. Retirement (retire/retireAll) and
/// inprocessing passes rewrite the clause database and invalidate the
/// saved prefix explicitly — the first solve after either starts from
/// the root, by design.

#pragma once

#include <cassert>
#include <optional>
#include <span>
#include <vector>

#include "core/core_trim.h"
#include "core/maxsat.h"
#include "core/soft_tracker.h"
#include "encodings/sink.h"

namespace msu {

/// One incremental-oracle session: solver + scoped sink + soft tracker
/// + budget + SAT-call accounting.
class OracleSession {
 public:
  explicit OracleSession(const MaxSatOptions& opts)
      : sat_(opts.sat), sink_(sat_) {
    sat_.setBudget(opts.budget);
  }

  OracleSession(const OracleSession&) = delete;
  OracleSession& operator=(const OracleSession&) = delete;

  [[nodiscard]] Solver& sat() { return sat_; }
  [[nodiscard]] ClauseSink& sink() { return sink_; }
  [[nodiscard]] bool okay() const { return sat_.okay(); }

  // ---- Loading ---------------------------------------------------------

  /// Ensures the solver knows at least `n` variables.
  void ensureVars(int n) {
    while (sat_.numVars() < n) {
      static_cast<void>(sat_.newVar());
    }
  }

  /// Loads the hard clauses of `f` (creating its variables first).
  void addHards(const WcnfFormula& f) {
    ensureVars(f.numVars());
    for (const Clause& c : f.hard()) {
      static_cast<void>(sat_.addClause(c));
    }
  }

  /// Loads `f` through a SoftTracker (hards + selector-augmented softs);
  /// the formula must be unweighted. The tracker's assumptions are then
  /// included in every `solve()`.
  SoftTracker& trackSofts(const WcnfFormula& f) {
    assert(!tracker_.has_value());
    tracker_.emplace(sat_, f);
    return *tracker_;
  }

  [[nodiscard]] bool hasTracker() const { return tracker_.has_value(); }
  [[nodiscard]] SoftTracker& tracker() { return *tracker_; }

  // ---- Scopes ----------------------------------------------------------

  [[nodiscard]] ScopeHandle beginScope() { return sink_.beginScope(); }
  void endScope(ScopeHandle scope) { sink_.endScope(scope); }
  void setEnforced(ScopeHandle scope, bool on) {
    sink_.setScopeEnforced(scope, on);
  }

  /// Retirement also schedules an inprocessing pass at the solver's
  /// next solve/restart boundary (no-op unless Options::inprocess): the
  /// database just shed a structure, so satisfied and subsumed leftovers
  /// are likely. The pass itself never runs here — retirement may be
  /// called mid-protocol, and the boundary is the known-safe point.
  void retire(ScopeHandle scope) {
    sink_.retireScope(scope);
    sat_.requestInprocess();
  }

  /// Batch retirement: one database sweep for many scopes.
  void retireAll(std::span<const ScopeHandle> scopes) {
    acts_buf_.clear();
    acts_buf_.reserve(scopes.size());
    for (const ScopeHandle sc : scopes) acts_buf_.push_back(sc.activator());
    sat_.retireAll(acts_buf_);
    if (!scopes.empty()) sat_.requestInprocess();
  }

  // ---- Solving ---------------------------------------------------------

  /// One oracle call: tracker assumptions (when attached) plus `extra`;
  /// live scope activators are appended by the solver itself.
  [[nodiscard]] lbool solve(std::span<const Lit> extra = {}) {
    ++sat_calls_;
    if (!tracker_) return sat_.solve(extra);
    assumps_buf_ = tracker_->assumptions();
    assumps_buf_.insert(assumps_buf_.end(), extra.begin(), extra.end());
    return sat_.solve(assumps_buf_);
  }

  [[nodiscard]] lbool solve(std::initializer_list<Lit> extra) {
    return solve(std::span<const Lit>(extra.begin(), extra.size()));
  }

  // ---- Core reduction --------------------------------------------------

  /// Fixpoint-trims a failing assumption set through this session's
  /// oracle (scope activators are auto-assumed by the solver as in any
  /// other session solve), charging the re-solves actually performed to
  /// satCalls() instead of a caller-side guess.
  [[nodiscard]] std::vector<Lit> trimCore(std::vector<Lit> core,
                                          const CoreTrimOptions& opts = {}) {
    const std::int64_t before = sat_.stats().solves;
    core = msu::trimCore(sat_, std::move(core), opts);
    sat_calls_ += sat_.stats().solves - before;
    return core;
  }

  /// Deletion-based core minimization through this session's oracle;
  /// the (conflict-budgeted) drop attempts count into satCalls().
  [[nodiscard]] std::vector<Lit> minimizeCore(
      std::vector<Lit> core, const CoreTrimOptions& opts = {}) {
    const std::int64_t before = sat_.stats().solves;
    core = msu::minimizeCore(sat_, std::move(core), opts);
    sat_calls_ += sat_.stats().solves - before;
    return core;
  }

  // ---- Result plumbing -------------------------------------------------

  [[nodiscard]] std::int64_t satCalls() const { return sat_calls_; }

  /// Copies the session's CDCL statistics and call count into a result.
  void exportStats(MaxSatResult& r) const {
    r.satStats = sat_.stats();
    r.satCalls = sat_calls_;
  }

 private:
  Solver sat_;
  SolverSink sink_;
  std::optional<SoftTracker> tracker_;
  std::int64_t sat_calls_ = 0;
  std::vector<Lit> assumps_buf_;
  std::vector<Lit> acts_buf_;
};

}  // namespace msu
