/// \file oracle_session.h
/// \brief The shared incremental-oracle layer under every SAT-based
///        MaxSAT engine: one object owning the CDCL solver, the scoped
///        clause sink, the (optional) soft-clause tracker and the
///        budget, so engines state their algorithm and nothing else.
///
/// Before this layer existed, each engine hand-rolled the same
/// lifecycle plumbing: construct a solver, wire the budget, load hard
/// clauses, attach selectors, track an `std::optional<Lit> activator`
/// plus an `activeBound` for its cardinality structure, unit-assert
/// stale activators to fake retirement, and copy the statistics out at
/// every exit point. The session centralises all of it on top of the
/// solver's native encoding-scope machinery (physical retirement +
/// variable recycling; see solver.h), mirroring the source paper's
/// philosophy of reusing learnt information across the iterations of a
/// core-guided search through one incremental oracle interface.
///
/// ## Prefix-stability contract (warm-started oracle calls)
///
/// With Solver::Options::reuse_trail the solver keeps its trail across
/// solve() boundaries and re-propagates only the suffix of the
/// assumption sequence that changed since the previous call (see
/// solver.h). The session keeps that reusable prefix maximal by
/// emitting assumptions in a *canonical stable order*, every call:
///
///  1. tracker assumptions first, in ascending selector-variable order
///     (SoftTracker::assumptions() enforces the order; relaxation only
///     *removes* elements, so the prefix up to the first newly relaxed
///     clause survives verbatim),
///  2. the caller's `extra` assumptions next (engines keep these
///     stable-ordered too — bound literals change only when the bound
///     moves),
///  3. live scope activators last, appended by the solver itself in
///     scope-creation order.
///
/// Engines must not reshuffle assumption sets between calls: a
/// permutation is semantically identical but destroys the common
/// prefix and with it the reuse. Retirement (retire/retireAll) and
/// inprocessing passes rewrite the clause database and invalidate the
/// saved prefix explicitly — the first solve after either starts from
/// the root, by design.
///
/// ## Reconstruction across retirement
///
/// Round-two inprocessing may eliminate or substitute auxiliary
/// variables, recording witnesses for model reconstruction (the
/// "reconstruction contract" in solver.h). The session needs no
/// special handling: removal is forbidden on frozen selectors, scope
/// activators and scope-owned variables, so no witness ever references
/// a variable that retire() recycles — retirement and reconstruction
/// commute, models stay total over every variable the engine created,
/// and cores keep naming the selectors the tracker passed.

#pragma once

#include <cassert>
#include <chrono>
#include <optional>
#include <span>
#include <vector>

#include "core/core_trim.h"
#include "core/maxsat.h"
#include "core/soft_tracker.h"
#include "encodings/sink.h"

namespace msu {

/// One incremental-oracle session: solver + scoped sink + soft tracker
/// + budget + SAT-call accounting.
class OracleSession {
 public:
  explicit OracleSession(const MaxSatOptions& opts)
      : sat_(opts.sat),
        sink_(sat_),
        progress_(opts.progress),
        trace_(opts.sat.trace) {
    sat_.setBudget(opts.budget);
    if (opts.metrics != nullptr) {
      solve_us_ = &opts.metrics->histogram(
          "msu_oracle_solve_us", "Latency of SAT oracle solve() calls");
    }
  }

  /// A dying session withdraws its memory contribution from the sink
  /// (mem_bytes is a gauge): engines that rebuild sessions mid-run must
  /// not leave stale bytes counted forever.
  ~OracleSession() {
    if (progress_ != nullptr) progress_->addMemBytes(-progress_mem_);
  }

  OracleSession(const OracleSession&) = delete;
  OracleSession& operator=(const OracleSession&) = delete;

  [[nodiscard]] Solver& sat() { return sat_; }
  [[nodiscard]] ClauseSink& sink() { return sink_; }
  [[nodiscard]] bool okay() const { return sat_.okay(); }

  // ---- Loading ---------------------------------------------------------

  /// Ensures the solver knows at least `n` variables.
  void ensureVars(int n) {
    while (sat_.numVars() < n) {
      static_cast<void>(sat_.newVar());
    }
  }

  /// Loads the hard clauses of `f` (creating its variables first).
  /// Runs under a bulk-load scope (Options::bulk_load, default on):
  /// watch construction is deferred to one counting pass over the
  /// whole batch instead of per-clause incremental growth.
  void addHards(const WcnfFormula& f) {
    ensureVars(f.numVars());
    const Solver::BulkLoadGuard bulk(sat_, sat_.options().bulk_load);
    for (const Clause& c : f.hard()) {
      static_cast<void>(sat_.addClause(c));
    }
  }

  /// Loads `f` through a SoftTracker (hards + selector-augmented softs);
  /// the formula must be unweighted. The tracker's assumptions are then
  /// included in every `solve()`. Bulk-loaded like addHards.
  SoftTracker& trackSofts(const WcnfFormula& f) {
    assert(!tracker_.has_value());
    const Solver::BulkLoadGuard bulk(sat_, sat_.options().bulk_load);
    tracker_.emplace(sat_, f);
    return *tracker_;
  }

  [[nodiscard]] bool hasTracker() const { return tracker_.has_value(); }
  [[nodiscard]] SoftTracker& tracker() { return *tracker_; }

  // ---- Scopes ----------------------------------------------------------

  [[nodiscard]] ScopeHandle beginScope() { return sink_.beginScope(); }
  void endScope(ScopeHandle scope) { sink_.endScope(scope); }
  void setEnforced(ScopeHandle scope, bool on) {
    sink_.setScopeEnforced(scope, on);
  }

  /// Retirement also schedules an inprocessing pass at the solver's
  /// next solve/restart boundary (no-op unless Options::inprocess): the
  /// database just shed a structure, so satisfied and subsumed leftovers
  /// are likely. The pass itself never runs here — retirement may be
  /// called mid-protocol, and the boundary is the known-safe point.
  void retire(ScopeHandle scope) {
    sink_.retireScope(scope);
    sat_.requestInprocess();
  }

  /// Batch retirement: one database sweep for many scopes.
  void retireAll(std::span<const ScopeHandle> scopes) {
    acts_buf_.clear();
    acts_buf_.reserve(scopes.size());
    for (const ScopeHandle sc : scopes) acts_buf_.push_back(sc.activator());
    sat_.retireAll(acts_buf_);
    if (!scopes.empty()) sat_.requestInprocess();
  }

  // ---- Solving ---------------------------------------------------------

  /// One oracle call: tracker assumptions (when attached) plus `extra`;
  /// live scope activators are appended by the solver itself.
  [[nodiscard]] lbool solve(std::span<const Lit> extra = {}) {
    ++sat_calls_;
    const auto t0 = solve_us_ != nullptr
                        ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
    lbool res;
    if (!tracker_) {
      res = sat_.solve(extra);
    } else {
      assumps_buf_ = tracker_->assumptions();
      assumps_buf_.insert(assumps_buf_.end(), extra.begin(), extra.end());
      res = sat_.solve(assumps_buf_);
    }
    if (solve_us_ != nullptr) {
      solve_us_->observe(std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
    }
    syncProgress(1);
    return res;
  }

  [[nodiscard]] lbool solve(std::initializer_list<Lit> extra) {
    return solve(std::span<const Lit>(extra.begin(), extra.size()));
  }

  // ---- Core reduction --------------------------------------------------

  /// Fixpoint-trims a failing assumption set through this session's
  /// oracle (scope activators are auto-assumed by the solver as in any
  /// other session solve), charging the re-solves actually performed to
  /// satCalls() instead of a caller-side guess.
  [[nodiscard]] std::vector<Lit> trimCore(std::vector<Lit> core,
                                          const CoreTrimOptions& opts = {}) {
    obs::TraceSpan span(trace_, obs::TraceCat::kCore, "trim-core");
    const std::int64_t before = sat_.stats().solves;
    core = msu::trimCore(sat_, std::move(core), opts);
    const std::int64_t calls = sat_.stats().solves - before;
    sat_calls_ += calls;
    syncProgress(calls);
    span.arg("lits", static_cast<std::int64_t>(core.size()));
    return core;
  }

  /// Deletion-based core minimization through this session's oracle;
  /// the (conflict-budgeted) drop attempts count into satCalls().
  [[nodiscard]] std::vector<Lit> minimizeCore(
      std::vector<Lit> core, const CoreTrimOptions& opts = {}) {
    obs::TraceSpan span(trace_, obs::TraceCat::kCore, "minimize-core");
    const std::int64_t before = sat_.stats().solves;
    core = msu::minimizeCore(sat_, std::move(core), opts);
    const std::int64_t calls = sat_.stats().solves - before;
    sat_calls_ += calls;
    syncProgress(calls);
    span.arg("lits", static_cast<std::int64_t>(core.size()));
    return core;
  }

  // ---- Result plumbing -------------------------------------------------

  [[nodiscard]] std::int64_t satCalls() const { return sat_calls_; }

  /// Copies the session's CDCL statistics and call count into a result.
  void exportStats(MaxSatResult& r) const {
    r.satStats = sat_.stats();
    r.satCalls = sat_calls_;
  }

 private:
  /// Streams the deltas since the last sync into the live-progress
  /// sink (no-op without one). Deltas — not totals — so the multiple
  /// sessions of one job (portfolio/cube workers) aggregate instead of
  /// clobbering each other; mem deltas may be negative (retirement,
  /// garbage collection) and keep each session's contribution honest.
  void syncProgress(std::int64_t calls) {
    if (progress_ == nullptr) return;
    const SolverStats& s = sat_.stats();
    progress_->addSatCalls(calls);
    progress_->addConflicts(s.conflicts - progress_conflicts_);
    progress_conflicts_ = s.conflicts;
    progress_->addMemBytes(s.mem_bytes - progress_mem_);
    progress_mem_ = s.mem_bytes;
  }

  Solver sat_;
  SolverSink sink_;
  obs::ProgressSink* progress_ = nullptr;
  obs::Tracer* trace_ = nullptr;
  obs::Histogram* solve_us_ = nullptr;
  std::int64_t progress_conflicts_ = 0;
  std::int64_t progress_mem_ = 0;
  std::optional<SoftTracker> tracker_;
  std::int64_t sat_calls_ = 0;
  std::vector<Lit> assumps_buf_;
  std::vector<Lit> acts_buf_;
};

}  // namespace msu
