#include "core/msu4.h"

#include <string>

#include "core/core_trim.h"
#include "core/incremental_atmost.h"
#include "core/oracle_session.h"

namespace msu {

Msu4Solver::Msu4Solver(MaxSatOptions options) : opts_(options) {}

Msu4Solver Msu4Solver::v1(MaxSatOptions options) {
  options.encoding = CardEncoding::Bdd;
  return Msu4Solver(options);
}

Msu4Solver Msu4Solver::v2(MaxSatOptions options) {
  options.encoding = CardEncoding::Sorter;
  return Msu4Solver(options);
}

std::string Msu4Solver::name() const {
  switch (opts_.encoding) {
    case CardEncoding::Bdd:
      return "msu4-v1";
    case CardEncoding::Sorter:
      return "msu4-v2";
    default:
      return std::string("msu4-") + toString(opts_.encoding);
  }
}

MaxSatResult Msu4Solver::solve(const WcnfFormula& input) {
  MaxSatResult result;
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return result;  // weights too large to duplicate: Unknown
  const WcnfFormula& formula = *reduced;
  const Weight m = formula.numSoft();

  OracleSession session(opts_);
  SoftTracker& tracker = session.trackSofts(formula);
  IncrementalAtMost card(opts_.encoding, opts_.reuseEncodings);

  if (!session.okay()) {
    result.status = MaxSatStatus::UnsatisfiableHard;
    session.exportStats(result);
    return result;
  }

  Weight lower = 0;       // proven: cost >= lower   (paper: |phi| - U)
  Weight upper = m + 1;   // best model cost; m+1 = "no model yet"
  Assignment bestModel;

  auto notifyBounds = [&] {
    if (opts_.onBounds) opts_.onBounds(lower, upper);
  };

  auto finish = [&](MaxSatStatus st) {
    result.status = st;
    result.lowerBound = lower;
    result.upperBound = std::min(upper, m);
    if (st == MaxSatStatus::Optimum) {
      result.cost = upper;
      result.model = std::move(bestModel);
    } else if (upper <= m) {
      result.model = std::move(bestModel);
    }
    session.exportStats(result);
    return result;
  };

  while (true) {
    ++result.iterations;
    const lbool st = session.solve();

    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown);

    if (st == lbool::True) {
      // SAT: refine the upper bound (Algorithm 1, lines 26-31).
      const Weight nu =
          opts_.tightenWithModelCost
              ? tracker.relaxedFalsifiedCost(formula, session.sat().model())
              : tracker.blockingAssignedTrue(session.sat().model());
      if (nu < upper) {
        upper = nu;
        bestModel = tracker.originalModel(session.sat().model());
        notifyBounds();
      }
      if (lower >= upper) return finish(MaxSatStatus::Optimum);
      // Require strictly fewer blocking variables next time; a re-encode
      // retires the previous bound structure through the session.
      card.assertAtMost(session.sink(), tracker.blockingLits(),
                        static_cast<int>(upper) - 1);
      continue;
    }

    // UNSAT: analyse the core (Algorithm 1, lines 12-24).
    ++result.coresFound;
    std::vector<Lit> coreLits = session.sat().core();
    if (opts_.trimCoreRounds > 0 && coreLits.size() > 1) {
      CoreTrimOptions trimOpts;
      trimOpts.trimRounds = opts_.trimCoreRounds;
      coreLits = session.trimCore(std::move(coreLits), trimOpts);
    }
    const std::vector<int> coreSoft = tracker.coreSoftIndices(coreLits);
    if (coreSoft.empty()) {
      // No initial clause without a blocking variable in the core.
      if (upper > m) {
        // Never saw a model and no cardinality constraint is active:
        // the hard clauses themselves are unsatisfiable.
        return finish(MaxSatStatus::UnsatisfiableHard);
      }
      return finish(MaxSatStatus::Optimum);
    }
    std::vector<Lit> freshBlocking;
    freshBlocking.reserve(coreSoft.size());
    for (int i : coreSoft) {
      tracker.relax(i);
      freshBlocking.push_back(tracker.selector(i));
    }
    if (opts_.msu4AtLeastOne) {
      // Optional line 19: at least one of the new blocking variables must
      // be used (prevents re-deriving the same core).
      static_cast<void>(session.sat().addClause(freshBlocking));
    }
    lower += 1;  // U++ : every assignment falsifies one more clause
    notifyBounds();
    if (lower >= upper && upper <= m) return finish(MaxSatStatus::Optimum);
  }
}

}  // namespace msu
