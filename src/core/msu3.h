/// \file msu3.h
/// \brief The msu3 algorithm (Marques-Silva & Planes, CoRR abs/0712.0097,
///        referenced by the DATE'08 paper as [22]): core-guided *lower
///        bound* search. A single cardinality constraint over the union
///        of all relaxed clauses is tightened to `<= lambda`, and lambda
///        grows by one per unsatisfiable outcome until the formula turns
///        satisfiable — at which point lambda is the optimum cost.
///
/// Our implementation keeps the constraint incremental: a totalizer (or
/// sorting network) over the blocking variables whose bound is enforced
/// by assumption, so nothing is ever retracted.

#pragma once

#include "core/maxsat.h"

namespace msu {

/// The msu3 engine (unsat-based linear search from below).
class Msu3Solver final : public MaxSatSolver {
 public:
  explicit Msu3Solver(MaxSatOptions options = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

 private:
  MaxSatOptions opts_;
};

}  // namespace msu
