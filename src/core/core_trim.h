/// \file core_trim.h
/// \brief Unsatisfiable-core reduction. The paper observes msu4 is
///        "effective only for instances for which SAT solvers are
///        effective at identifying small unsatisfiable cores"; these
///        helpers shrink the cores the solver returns before the MaxSAT
///        engine commits blocking variables to them.
///
/// Two levels:
///  * trimCore — cheap fixpoint: re-solve under the core itself; the
///    final-conflict analysis of the re-solve usually returns a proper
///    subset. Iterate until stable or the round limit.
///  * minimizeCore — destructive (deletion-based) minimization: try to
///    drop each literal with a conflict-budgeted solve; quadratic cost,
///    near-minimal results.

#pragma once

#include <cstdint>
#include <vector>

#include "cnf/literal.h"
#include "sat/solver.h"

namespace msu {

/// Options for core reduction.
struct CoreTrimOptions {
  int trimRounds = 4;  ///< fixpoint rounds for trimCore
  std::int64_t minimizeConflictBudget = 1000;  ///< per drop attempt
};

/// Fixpoint trimming. `core` must be a failing assumption set of
/// `solver` (conjunction inconsistent with the clause database). Returns
/// a subset that is still failing. The solver keeps any clauses it
/// learns — later calls only get faster.
[[nodiscard]] std::vector<Lit> trimCore(Solver& solver, std::vector<Lit> core,
                                        const CoreTrimOptions& options = {});

/// Deletion-based minimization: for each literal, re-solve without it
/// under a conflict budget; literals whose removal keeps the set failing
/// are dropped permanently. Returns the reduced core (an unsatisfiable
/// subset; minimal if no budget was exhausted).
[[nodiscard]] std::vector<Lit> minimizeCore(
    Solver& solver, std::vector<Lit> core,
    const CoreTrimOptions& options = {});

}  // namespace msu
