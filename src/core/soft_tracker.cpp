#include "core/soft_tracker.h"

#include <algorithm>
#include <cassert>

namespace msu {

SoftTracker::SoftTracker(Solver& solver, const WcnfFormula& formula) {
  assert(formula.isUnweighted());
  num_original_vars_ = formula.numVars();
  while (solver.numVars() < num_original_vars_) {
    static_cast<void>(solver.newVar());
  }
  for (const Clause& h : formula.hard()) {
    static_cast<void>(solver.addClause(h));
  }
  selectors_.reserve(static_cast<std::size_t>(formula.numSoft()));
  relaxed_.assign(static_cast<std::size_t>(formula.numSoft()), 0);
  for (int i = 0; i < formula.numSoft(); ++i) {
    const Var a = solver.newVar();
    // The protocol depends on the selector's textual presence in its
    // soft clause (assuming ~a enforces it, cores name it): freeze it
    // so inprocessing never strengthens the selector away.
    solver.setFrozen(a, true);
    var_to_soft_.resize(static_cast<std::size_t>(a) + 1, -1);
    var_to_soft_[static_cast<std::size_t>(a)] = i;
    selectors_.push_back(posLit(a));
    Clause augmented = formula.soft()[static_cast<std::size_t>(i)].lits;
    augmented.push_back(posLit(a));
    static_cast<void>(solver.addClause(augmented));
  }
}

std::optional<int> SoftTracker::softOfVar(Var v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= var_to_soft_.size()) {
    return std::nullopt;
  }
  const int idx = var_to_soft_[static_cast<std::size_t>(v)];
  if (idx < 0) return std::nullopt;
  return idx;
}

std::vector<Lit> SoftTracker::assumptions() const {
  std::vector<Lit> out;
  out.reserve(selectors_.size());
  for (int i = 0; i < numSoft(); ++i) {
    if (!isRelaxed(i)) out.push_back(~selectors_[static_cast<std::size_t>(i)]);
  }
  // Canonical prefix-stable order (see the header contract): ascending
  // selector variable. Construction already allocates selectors in
  // ascending order, so the sort is a no-op guard — but the warm-start
  // prefix reuse in the solver depends on the order, so it is enforced
  // rather than assumed.
  if (!std::is_sorted(out.begin(), out.end(),
                      [](Lit a, Lit b) { return a.var() < b.var(); })) {
    std::stable_sort(out.begin(), out.end(),
                     [](Lit a, Lit b) { return a.var() < b.var(); });
  }
  return out;
}

std::vector<Lit> SoftTracker::blockingLits() const {
  std::vector<Lit> out;
  out.reserve(relax_order_.size());
  for (int i : relax_order_) {
    out.push_back(selectors_[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::vector<int> SoftTracker::coreSoftIndices(std::span<const Lit> core) const {
  std::vector<int> out;
  for (Lit p : core) {
    if (std::optional<int> idx = softOfVar(p.var())) out.push_back(*idx);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int SoftTracker::relaxedFalsifiedCost(const WcnfFormula& formula,
                                      const std::vector<lbool>& model) const {
  int cost = 0;
  for (int i = 0; i < numSoft(); ++i) {
    if (!isRelaxed(i)) continue;
    const Clause& c = formula.soft()[static_cast<std::size_t>(i)].lits;
    bool sat = false;
    for (Lit p : c) {
      if (applySign(model[static_cast<std::size_t>(p.var())], p) ==
          lbool::True) {
        sat = true;
        break;
      }
    }
    if (!sat) ++cost;
  }
  return cost;
}

int SoftTracker::blockingAssignedTrue(const std::vector<lbool>& model) const {
  int n = 0;
  for (int i = 0; i < numSoft(); ++i) {
    if (!isRelaxed(i)) continue;
    const Lit a = selectors_[static_cast<std::size_t>(i)];
    if (applySign(model[static_cast<std::size_t>(a.var())], a) == lbool::True) {
      ++n;
    }
  }
  return n;
}

Assignment SoftTracker::originalModel(const std::vector<lbool>& model) const {
  Assignment out(static_cast<std::size_t>(num_original_vars_));
  for (int v = 0; v < num_original_vars_; ++v) {
    const lbool val = model[static_cast<std::size_t>(v)];
    // Complete the model deterministically: unconstrained variables get
    // `false` so downstream cost evaluation sees a total assignment.
    out[static_cast<std::size_t>(v)] =
        (val == lbool::Undef) ? lbool::False : val;
  }
  return out;
}

}  // namespace msu
