/// \file linear_search.h
/// \brief SAT–UNSAT linear search: relax every soft clause with a
///        blocking variable up front (the paper's PBO formulation of
///        MaxSAT, §2.2) and repeatedly ask for a model using strictly
///        fewer blocking variables until none exists. This is the search
///        organisation of minisat+ on the MaxSAT cost function, here
///        instantiated with cardinality encodings.

#pragma once

#include "core/maxsat.h"

namespace msu {

/// Model-improving linear search from above.
class LinearSearchSolver final : public MaxSatSolver {
 public:
  explicit LinearSearchSolver(MaxSatOptions options = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

 private:
  MaxSatOptions opts_;
};

}  // namespace msu
