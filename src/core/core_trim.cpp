#include "core/core_trim.h"

#include <algorithm>

namespace msu {

std::vector<Lit> trimCore(Solver& solver, std::vector<Lit> core,
                          const CoreTrimOptions& options) {
  for (int round = 0; round < options.trimRounds; ++round) {
    if (core.size() <= 1) break;
    const lbool st = solver.solve(core);
    if (st != lbool::False) break;  // budget interference: keep what we have
    std::vector<Lit> next = solver.core();
    if (next.size() >= core.size()) break;  // no progress
    core = std::move(next);
  }
  return core;
}

std::vector<Lit> minimizeCore(Solver& solver, std::vector<Lit> core,
                              const CoreTrimOptions& options) {
  core = trimCore(solver, std::move(core), options);
  // Try dropping one literal at a time (deletion-based minimization).
  std::size_t i = 0;
  while (i < core.size() && core.size() > 1) {
    std::vector<Lit> candidate;
    candidate.reserve(core.size() - 1);
    for (std::size_t j = 0; j < core.size(); ++j) {
      if (j != i) candidate.push_back(core[j]);
    }
    const Budget saved = solver.budget();
    solver.setBudget(Budget::conflicts(solver.stats().conflicts +
                                       options.minimizeConflictBudget));
    const lbool st = solver.solve(candidate);
    solver.setBudget(saved);
    if (st == lbool::False) {
      // Still inconsistent without core[i]; adopt the (possibly even
      // smaller) reported core.
      std::vector<Lit> next = solver.core();
      // Keep only literals of the candidate (order-preserving).
      std::vector<Lit> filtered;
      for (Lit p : candidate) {
        if (std::find(next.begin(), next.end(), p) != next.end()) {
          filtered.push_back(p);
        }
      }
      core = filtered.empty() ? candidate : filtered;
      i = 0;  // restart scan on the smaller set
    } else {
      ++i;  // needed (or budget ran out): keep it
    }
  }
  return core;
}

}  // namespace msu
