#include "core/wmsu1.h"

#include <algorithm>
#include <unordered_map>

#include "encodings/cardinality.h"
#include "encodings/sink.h"

namespace msu {
namespace {

/// One active soft item: a clause version in the solver with its weight.
struct SoftItem {
  Clause lits;     ///< original literals plus accumulated blocking vars
  Weight weight;   ///< remaining weight carried by this version
  Lit selector;    ///< current selector (assume ~selector to enforce)
};

}  // namespace

Wmsu1Solver::Wmsu1Solver(MaxSatOptions options) : opts_(options) {}

std::string Wmsu1Solver::name() const { return "wmsu1"; }

MaxSatResult Wmsu1Solver::solve(const WcnfFormula& formula) {
  MaxSatResult result;
  const int numOriginalVars = formula.numVars();
  const Weight totalSoft = formula.totalSoftWeight();

  Solver sat(opts_.sat);
  sat.setBudget(opts_.budget);
  SolverSink sink(sat);
  while (sat.numVars() < numOriginalVars) static_cast<void>(sat.newVar());
  for (const Clause& h : formula.hard()) static_cast<void>(sat.addClause(h));

  std::vector<SoftItem> items;
  std::unordered_map<Var, int> selectorToItem;

  auto install = [&](Clause lits, Weight weight) {
    const Var a = sat.newVar();
    SoftItem item{std::move(lits), weight, posLit(a)};
    Clause augmented = item.lits;
    augmented.push_back(item.selector);
    static_cast<void>(sat.addClause(augmented));
    selectorToItem[a] = static_cast<int>(items.size());
    items.push_back(std::move(item));
  };

  for (const SoftClause& s : formula.soft()) install(s.lits, s.weight);

  if (!sat.okay()) {
    result.status = MaxSatStatus::UnsatisfiableHard;
    result.satStats = sat.stats();
    return result;
  }

  Weight cost = 0;

  auto finish = [&](MaxSatStatus st, Assignment model) {
    result.status = st;
    result.lowerBound = cost;
    result.upperBound = (st == MaxSatStatus::Optimum) ? cost : totalSoft;
    result.cost = (st == MaxSatStatus::Optimum) ? cost : 0;
    result.model = std::move(model);
    result.satStats = sat.stats();
    return result;
  };

  while (true) {
    ++result.iterations;
    ++result.satCalls;
    std::vector<Lit> assumps;
    assumps.reserve(items.size());
    for (const SoftItem& item : items) {
      if (item.weight > 0) assumps.push_back(~item.selector);
    }

    const lbool st = sat.solve(assumps);
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown, {});

    if (st == lbool::True) {
      Assignment model(static_cast<std::size_t>(numOriginalVars));
      for (Var v = 0; v < numOriginalVars; ++v) {
        const lbool val = sat.model()[static_cast<std::size_t>(v)];
        model[static_cast<std::size_t>(v)] =
            (val == lbool::Undef) ? lbool::False : val;
      }
      return finish(MaxSatStatus::Optimum, std::move(model));
    }

    ++result.coresFound;
    std::vector<int> coreItems;
    for (Lit p : sat.core()) {
      if (auto it = selectorToItem.find(p.var());
          it != selectorToItem.end()) {
        coreItems.push_back(it->second);
      }
    }
    std::sort(coreItems.begin(), coreItems.end());
    coreItems.erase(std::unique(coreItems.begin(), coreItems.end()),
                    coreItems.end());
    if (coreItems.empty()) {
      return finish(MaxSatStatus::UnsatisfiableHard, {});
    }

    // Charge the core its minimum weight and split the members.
    Weight wmin = items[static_cast<std::size_t>(coreItems[0])].weight;
    for (int idx : coreItems) {
      wmin = std::min(wmin, items[static_cast<std::size_t>(idx)].weight);
    }

    std::vector<Lit> freshBlocking;
    freshBlocking.reserve(coreItems.size());
    for (int idx : coreItems) {
      // Copy out before install() — it grows `items` and may reallocate.
      const Clause lits = items[static_cast<std::size_t>(idx)].lits;
      const Weight weight = items[static_cast<std::size_t>(idx)].weight;
      const Lit oldSelector = items[static_cast<std::size_t>(idx)].selector;
      items[static_cast<std::size_t>(idx)].weight = 0;  // retire

      selectorToItem.erase(oldSelector.var());
      static_cast<void>(sat.addClause({oldSelector}));
      const Weight residual = weight - wmin;
      if (residual > 0) {
        // Residual copy without a new blocking variable.
        install(lits, residual);
      }
      // Relaxed copy of weight wmin with a fresh blocking variable.
      const Lit b = posLit(sat.newVar());
      Clause relaxed = lits;
      relaxed.push_back(b);
      freshBlocking.push_back(b);
      install(std::move(relaxed), wmin);
    }
    encodeExactlyOne(sink, freshBlocking);
    cost += wmin;
    if (opts_.onBounds) opts_.onBounds(cost, totalSoft + 1);
  }
}

}  // namespace msu
