#include "core/wmsu1.h"

#include <algorithm>
#include <unordered_map>

#include "core/oracle_session.h"
#include "encodings/cardinality.h"

namespace msu {
namespace {

/// One active soft item: a clause version in the solver with its weight.
/// The version lives in its own encoding scope; the scope activator is
/// the enforcement assumption, and retiring the scope deletes the
/// clause physically (recycling the selector variable).
struct SoftItem {
  Clause lits;          ///< original literals plus accumulated blocking vars
  Weight weight;        ///< remaining weight carried by this version
  ScopeHandle version;  ///< scope of the current version
};

}  // namespace

Wmsu1Solver::Wmsu1Solver(MaxSatOptions options) : opts_(options) {}

std::string Wmsu1Solver::name() const { return "wmsu1"; }

MaxSatResult Wmsu1Solver::solve(const WcnfFormula& formula) {
  MaxSatResult result;
  const int numOriginalVars = formula.numVars();
  const Weight totalSoft = formula.totalSoftWeight();

  OracleSession session(opts_);
  session.addHards(formula);

  std::vector<SoftItem> items;
  std::unordered_map<Var, int> activatorToItem;

  auto install = [&](Clause lits, Weight weight) {
    const ScopeHandle act = session.beginScope();
    session.sink().addClause(lits);
    session.endScope(act);
    activatorToItem[act.activator().var()] = static_cast<int>(items.size());
    items.push_back(SoftItem{std::move(lits), weight, act});
  };

  for (const SoftClause& s : formula.soft()) install(s.lits, s.weight);

  if (!session.okay()) {
    result.status = MaxSatStatus::UnsatisfiableHard;
    session.exportStats(result);
    return result;
  }

  Weight cost = 0;

  auto finish = [&](MaxSatStatus st, Assignment model) {
    result.status = st;
    result.lowerBound = cost;
    result.upperBound = (st == MaxSatStatus::Optimum) ? cost : totalSoft;
    result.cost = (st == MaxSatStatus::Optimum) ? cost : 0;
    result.model = std::move(model);
    session.exportStats(result);
    return result;
  };

  while (true) {
    ++result.iterations;
    // Enforcement is automatic: every live version scope's activator is
    // assumed by the solver itself.
    const lbool st = session.solve();
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown, {});

    if (st == lbool::True) {
      Assignment model(static_cast<std::size_t>(numOriginalVars));
      for (Var v = 0; v < numOriginalVars; ++v) {
        const lbool val = session.sat().model()[static_cast<std::size_t>(v)];
        model[static_cast<std::size_t>(v)] =
            (val == lbool::Undef) ? lbool::False : val;
      }
      return finish(MaxSatStatus::Optimum, std::move(model));
    }

    ++result.coresFound;
    std::vector<int> coreItems;
    for (Lit p : session.sat().core()) {
      if (auto it = activatorToItem.find(p.var());
          it != activatorToItem.end()) {
        coreItems.push_back(it->second);
      }
    }
    std::sort(coreItems.begin(), coreItems.end());
    coreItems.erase(std::unique(coreItems.begin(), coreItems.end()),
                    coreItems.end());
    if (coreItems.empty()) {
      return finish(MaxSatStatus::UnsatisfiableHard, {});
    }

    // Charge the core its minimum weight and split the members.
    Weight wmin = items[static_cast<std::size_t>(coreItems[0])].weight;
    for (int idx : coreItems) {
      wmin = std::min(wmin, items[static_cast<std::size_t>(idx)].weight);
    }

    // Retire every core member's version in one batch sweep, then
    // install the residual and relaxed successors.
    std::vector<ScopeHandle> retired;
    std::vector<std::pair<Clause, Weight>> split;  // (lits, old weight)
    retired.reserve(coreItems.size());
    split.reserve(coreItems.size());
    for (int idx : coreItems) {
      SoftItem& item = items[static_cast<std::size_t>(idx)];
      retired.push_back(item.version);
      activatorToItem.erase(item.version.activator().var());
      split.emplace_back(item.lits, item.weight);
      item.weight = 0;  // retired
    }
    session.retireAll(retired);

    std::vector<Lit> freshBlocking;
    freshBlocking.reserve(split.size());
    for (auto& [clauseLits, weight] : split) {
      const Weight residual = weight - wmin;
      if (residual > 0) {
        // Residual copy without a new blocking variable.
        install(clauseLits, residual);
      }
      // Relaxed copy of weight wmin with a fresh blocking variable.
      const Lit b = posLit(session.sat().newVar());
      Clause relaxed = std::move(clauseLits);
      relaxed.push_back(b);
      freshBlocking.push_back(b);
      install(std::move(relaxed), wmin);
    }
    encodeExactlyOne(session.sink(), freshBlocking);
    cost += wmin;
    if (opts_.onBounds) opts_.onBounds(cost, totalSoft + 1);
  }
}

}  // namespace msu
