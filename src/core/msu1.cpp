#include "core/msu1.h"

#include <unordered_map>

#include "core/oracle_session.h"
#include "encodings/cardinality.h"

namespace msu {

Msu1Solver::Msu1Solver(MaxSatOptions options) : opts_(options) {}

std::string Msu1Solver::name() const { return "msu1"; }

MaxSatResult Msu1Solver::solve(const WcnfFormula& input) {
  MaxSatResult result;
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return result;
  const WcnfFormula& formula = *reduced;
  const Weight m = formula.numSoft();
  const int numOriginalVars = formula.numVars();

  OracleSession session(opts_);
  session.addHards(formula);

  // Per soft clause: its current literal set (original literals plus the
  // blocking variables accumulated over relaxations) and the scope
  // holding its current version. The scope activator doubles as the
  // enforcement assumption (handled by the session's oracle), and
  // retiring a version physically deletes its clause and recycles the
  // selector variable — the modern form of Fu–Malik's unit-asserted
  // selectors.
  std::vector<Clause> lits(static_cast<std::size_t>(m));
  std::vector<ScopeHandle> version(static_cast<std::size_t>(m));
  std::unordered_map<Var, int> activatorToSoft;

  auto installVersion = [&](int i) {
    const ScopeHandle act = session.beginScope();
    session.sink().addClause(lits[static_cast<std::size_t>(i)]);
    session.endScope(act);
    version[static_cast<std::size_t>(i)] = act;
    activatorToSoft[act.activator().var()] = i;
  };

  for (int i = 0; i < m; ++i) {
    lits[static_cast<std::size_t>(i)] =
        formula.soft()[static_cast<std::size_t>(i)].lits;
    installVersion(i);
  }

  if (!session.okay()) {
    result.status = MaxSatStatus::UnsatisfiableHard;
    session.exportStats(result);
    return result;
  }

  Weight cost = 0;  // one per relaxed core

  auto finish = [&](MaxSatStatus st, Assignment model) {
    result.status = st;
    result.lowerBound = cost;
    result.upperBound = (st == MaxSatStatus::Optimum) ? cost : m;
    result.cost = (st == MaxSatStatus::Optimum) ? cost : 0;
    result.model = std::move(model);
    session.exportStats(result);
    return result;
  };

  while (true) {
    ++result.iterations;
    // Enforcement is automatic: every live version scope's activator is
    // assumed by the solver itself.
    const lbool st = session.solve();
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown, {});

    if (st == lbool::True) {
      Assignment model(static_cast<std::size_t>(numOriginalVars));
      for (Var v = 0; v < numOriginalVars; ++v) {
        const lbool val = session.sat().model()[static_cast<std::size_t>(v)];
        model[static_cast<std::size_t>(v)] =
            (val == lbool::Undef) ? lbool::False : val;
      }
      return finish(MaxSatStatus::Optimum, std::move(model));
    }

    ++result.coresFound;
    // Map the failed activator assumptions back to soft indices.
    std::vector<int> coreSoft;
    for (Lit p : session.sat().core()) {
      if (auto it = activatorToSoft.find(p.var());
          it != activatorToSoft.end()) {
        coreSoft.push_back(it->second);
      }
    }
    if (coreSoft.empty()) {
      return finish(MaxSatStatus::UnsatisfiableHard, {});
    }

    // Fu-Malik relaxation: fresh blocking variable per core clause,
    // exactly one of them true. The old versions are retired in one
    // batch sweep — clauses deleted, selector variables recycled.
    std::vector<ScopeHandle> retired;
    std::vector<Lit> freshBlocking;
    retired.reserve(coreSoft.size());
    freshBlocking.reserve(coreSoft.size());
    for (int i : coreSoft) {
      const ScopeHandle oldVersion = version[static_cast<std::size_t>(i)];
      activatorToSoft.erase(oldVersion.activator().var());
      retired.push_back(oldVersion);
      const Lit b = posLit(session.sat().newVar());
      lits[static_cast<std::size_t>(i)].push_back(b);
      freshBlocking.push_back(b);
    }
    session.retireAll(retired);
    for (int i : coreSoft) installVersion(i);
    encodeExactlyOne(session.sink(), freshBlocking);
    cost += 1;
    if (opts_.onBounds) opts_.onBounds(cost, m + 1);
  }
}

}  // namespace msu
