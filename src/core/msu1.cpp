#include "core/msu1.h"

#include <unordered_map>

#include "encodings/cardinality.h"
#include "encodings/sink.h"

namespace msu {

Msu1Solver::Msu1Solver(MaxSatOptions options) : opts_(options) {}

std::string Msu1Solver::name() const { return "msu1"; }

MaxSatResult Msu1Solver::solve(const WcnfFormula& input) {
  MaxSatResult result;
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return result;
  const WcnfFormula& formula = *reduced;
  const Weight m = formula.numSoft();
  const int numOriginalVars = formula.numVars();

  Solver sat(opts_.sat);
  sat.setBudget(opts_.budget);
  SolverSink sink(sat);
  while (sat.numVars() < numOriginalVars) static_cast<void>(sat.newVar());
  for (const Clause& h : formula.hard()) static_cast<void>(sat.addClause(h));

  // Per soft clause: its current literal set (original literals plus the
  // blocking variables accumulated over relaxations) and its current
  // selector. Retiring a version = unit-asserting its selector.
  std::vector<Clause> lits(static_cast<std::size_t>(m));
  std::vector<Lit> selector(static_cast<std::size_t>(m));
  std::unordered_map<Var, int> selectorToSoft;

  auto installVersion = [&](int i) {
    const Var a = sat.newVar();
    selector[static_cast<std::size_t>(i)] = posLit(a);
    selectorToSoft[a] = i;
    Clause c = lits[static_cast<std::size_t>(i)];
    c.push_back(posLit(a));
    static_cast<void>(sat.addClause(c));
  };

  for (int i = 0; i < m; ++i) {
    lits[static_cast<std::size_t>(i)] =
        formula.soft()[static_cast<std::size_t>(i)].lits;
    installVersion(i);
  }

  if (!sat.okay()) {
    result.status = MaxSatStatus::UnsatisfiableHard;
    result.satStats = sat.stats();
    return result;
  }

  Weight cost = 0;  // one per relaxed core

  auto finish = [&](MaxSatStatus st, Assignment model) {
    result.status = st;
    result.lowerBound = cost;
    result.upperBound = (st == MaxSatStatus::Optimum) ? cost : m;
    result.cost = (st == MaxSatStatus::Optimum) ? cost : 0;
    result.model = std::move(model);
    result.satStats = sat.stats();
    return result;
  };

  while (true) {
    ++result.iterations;
    ++result.satCalls;
    std::vector<Lit> assumps;
    assumps.reserve(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      assumps.push_back(~selector[static_cast<std::size_t>(i)]);
    }

    const lbool st = sat.solve(assumps);
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown, {});

    if (st == lbool::True) {
      Assignment model(static_cast<std::size_t>(numOriginalVars));
      for (Var v = 0; v < numOriginalVars; ++v) {
        const lbool val = sat.model()[static_cast<std::size_t>(v)];
        model[static_cast<std::size_t>(v)] =
            (val == lbool::Undef) ? lbool::False : val;
      }
      return finish(MaxSatStatus::Optimum, std::move(model));
    }

    ++result.coresFound;
    // Map the failed assumptions back to soft indices.
    std::vector<int> coreSoft;
    for (Lit p : sat.core()) {
      if (auto it = selectorToSoft.find(p.var()); it != selectorToSoft.end()) {
        coreSoft.push_back(it->second);
      }
    }
    if (coreSoft.empty()) {
      return finish(MaxSatStatus::UnsatisfiableHard, {});
    }

    // Fu-Malik relaxation: fresh blocking variable per core clause,
    // exactly one of them true.
    std::vector<Lit> freshBlocking;
    freshBlocking.reserve(coreSoft.size());
    for (int i : coreSoft) {
      const Lit oldSel = selector[static_cast<std::size_t>(i)];
      selectorToSoft.erase(oldSel.var());
      static_cast<void>(sat.addClause({oldSel}));  // retire the old version
      const Lit b = posLit(sat.newVar());
      lits[static_cast<std::size_t>(i)].push_back(b);
      freshBlocking.push_back(b);
      installVersion(i);
    }
    encodeExactlyOne(sink, freshBlocking);
    cost += 1;
    if (opts_.onBounds) opts_.onBounds(cost, m + 1);
  }
}

}  // namespace msu
