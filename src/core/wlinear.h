/// \file wlinear.h
/// \brief Weighted SAT–UNSAT linear search: the paper's PBO formulation
///        of MaxSAT (§2.2) with a genuinely weighted cost function,
///        solved by model-improving iteration. Every soft clause gets a
///        blocking variable; each model's true cost W tightens a
///        pseudo-Boolean constraint `sum(w_i * b_i) <= W - 1` until
///        unsatisfiability proves the last model optimal.
///
/// This is the weighted counterpart of LinearSearchSolver (which handles
/// unit weights with cardinality encodings); unweighted inputs are
/// automatically routed through the cheaper cardinality path.

#pragma once

#include "core/maxsat.h"
#include "encodings/pb.h"

namespace msu {

/// Weighted model-improving linear search from above.
class WeightedLinearSolver final : public MaxSatSolver {
 public:
  /// `pbEncoding` selects the translation of the weighted cost
  /// constraint (unweighted instances use `options.encoding` instead).
  explicit WeightedLinearSolver(MaxSatOptions options = {},
                                PbEncoding pbEncoding = PbEncoding::Bdd);

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

 private:
  MaxSatOptions opts_;
  PbEncoding pb_;
};

}  // namespace msu
