/// \file oll.h
/// \brief OLL: core-guided MaxSAT with *soft cardinality constraints*
///        (Morgado, Dodaro & Marques-Silva; the engine behind RC2),
///        implemented natively for weighted instances.
///
/// This is the modern descendant of the msu family the DATE'08 paper
/// opens (§5 calls for the interplay of core-guided algorithms to be
/// "further developed"): like msu4 it learns from unsatisfiable cores,
/// but instead of bounding *all* blocking variables with one cardinality
/// constraint it attaches an individually-weighted, lazily-tightened
/// totalizer to every core:
///  * every UNSAT core K with minimum member weight m raises the lower
///    bound by m, charges m to each member, and introduces the soft
///    constraint "at most 1 of K violated" with weight m;
///  * when such a constraint itself appears in a core, its bound is
///    extended ("at most 2", ...) lazily, reusing the same totalizer
///    (incremental input reuse, as in msu3/msu4's reuseEncodings);
///  * the first satisfiable outcome is the optimum — OLL never needs an
///    upper-bound search phase.

#pragma once

#include "core/maxsat.h"

namespace msu {

/// The OLL / soft-cardinality-constraints engine (weighted-native).
class OllSolver final : public MaxSatSolver {
 public:
  explicit OllSolver(MaxSatOptions options = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

 private:
  MaxSatOptions opts_;
};

}  // namespace msu
