/// \file binary_search.h
/// \brief Binary search on the MaxSAT cost: relax every soft clause up
///        front and bisect the cost interval with assumption-enforced
///        cardinality bounds. An extension of the paper's linear searches
///        (discussed in the msu family follow-up work) included here for
///        the algorithm-family ablation.

#pragma once

#include "core/maxsat.h"

namespace msu {

/// Cost bisection with assumable bounds.
class BinarySearchSolver final : public MaxSatSolver {
 public:
  explicit BinarySearchSolver(MaxSatOptions options = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

 private:
  MaxSatOptions opts_;
};

}  // namespace msu
