#include "core/wlinear.h"

#include <cassert>

#include "core/oracle_session.h"
#include "encodings/cardinality.h"

namespace msu {

WeightedLinearSolver::WeightedLinearSolver(MaxSatOptions options,
                                           PbEncoding pbEncoding)
    : opts_(options), pb_(pbEncoding) {}

std::string WeightedLinearSolver::name() const {
  return std::string("wlinear-") + toString(pb_);
}

MaxSatResult WeightedLinearSolver::solve(const WcnfFormula& formula) {
  MaxSatResult result;
  const Weight total = formula.totalSoftWeight();
  const bool unweighted = formula.isUnweighted();

  OracleSession session(opts_);
  session.addHards(formula);

  // Blocking variable per soft clause (the paper's PBO formulation).
  std::vector<PbTerm> terms;
  terms.reserve(static_cast<std::size_t>(formula.numSoft()));
  for (const SoftClause& sc : formula.soft()) {
    const Lit b = posLit(session.sat().newVar());
    Clause withB = sc.lits;
    withB.push_back(b);
    static_cast<void>(session.sat().addClause(withB));
    terms.push_back({b, sc.weight});
  }

  Weight lower = 0;
  Weight upper = total + 1;  // no model yet
  Assignment best;
  ScopeHandle boundScope;  // scope of the current bound constraint

  auto notifyBounds = [&] {
    if (opts_.onBounds) opts_.onBounds(lower, upper);
  };

  auto finish = [&](MaxSatStatus st) {
    result.status = st;
    result.lowerBound = (st == MaxSatStatus::Optimum) ? upper : lower;
    result.upperBound = std::min(upper, total);
    if (st == MaxSatStatus::Optimum) {
      result.cost = upper;
      result.model = std::move(best);
    } else if (upper <= total) {
      result.model = std::move(best);
    }
    session.exportStats(result);
    return result;
  };

  while (true) {
    ++result.iterations;
    const lbool st = session.solve();
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown);
    if (st == lbool::False) {
      // No model beats the bound: either the hards alone are
      // unsatisfiable (no model ever) or the last model is optimal.
      if (upper > total) return finish(MaxSatStatus::UnsatisfiableHard);
      return finish(MaxSatStatus::Optimum);
    }

    Assignment model(static_cast<std::size_t>(formula.numVars()));
    for (Var v = 0; v < formula.numVars(); ++v) {
      model[static_cast<std::size_t>(v)] =
          session.sat().model()[static_cast<std::size_t>(v)];
    }
    const std::optional<Weight> cost = formula.cost(model);
    assert(cost.has_value());
    upper = std::min(upper, *cost);
    best = std::move(model);
    notifyBounds();
    if (upper == 0) return finish(MaxSatStatus::Optimum);

    // Demand a strictly better model. A falsified soft clause forces its
    // blocking variable, so any model of the constrained formula has
    // true cost <= upper - 1. The new constraint subsumes the previous
    // one, whose scope is physically retired instead of rotting in the
    // database.
    if (boundScope.defined()) session.retire(boundScope);
    boundScope = session.beginScope();
    if (unweighted) {
      std::vector<Lit> lits;
      lits.reserve(terms.size());
      for (const PbTerm& t : terms) lits.push_back(t.lit);
      encodeAtMost(session.sink(), lits, static_cast<int>(upper) - 1,
                   opts_.encoding);
    } else {
      encodePbLeq(session.sink(), terms, upper - 1, pb_);
    }
    session.endScope(boundScope);
  }
}

}  // namespace msu
