/// \file preprocess.h
/// \brief MaxSAT-safe preprocessing of WCNF instances. Only
///        transformations sound for *both* hard and soft clauses are
///        applied (classic SAT preprocessing like pure-literal deletion
///        is unsound on soft clauses):
///        * unit propagation over the hard clauses, applied to all
///          clauses (satisfied clauses drop, falsified softs pay their
///          weight up front, literals fixed false vanish);
///        * tautology removal (hard and soft);
///        * duplicate-soft merging (weights add up);
///        * duplicate-hard removal.
///        The variable space is preserved so models transfer directly;
///        fixed variables are reported for model completion.

#pragma once

#include <optional>
#include <vector>

#include "cnf/wcnf.h"

namespace msu {

/// Result of preprocessing.
struct PreprocessResult {
  /// The simplified instance (same variable numbering), or unset when
  /// the hard clauses were refuted by unit propagation alone.
  std::optional<WcnfFormula> simplified;

  /// Cost already incurred: total weight of soft clauses falsified by
  /// the hard-forced assignments. Add to any optimum of `simplified`.
  Weight forcedCost = 0;

  /// Hard-forced variable values (Undef where free). Apply on top of any
  /// model of `simplified` to obtain a model of the original instance.
  Assignment forced;

  /// Statistics.
  int fixedVars = 0;
  int removedHard = 0;
  int removedSoft = 0;
  int mergedSoft = 0;
};

/// Preprocesses the instance. Sound for partial weighted MaxSAT:
/// opt(original) == forcedCost + opt(simplified), and any model of the
/// simplified instance extended with `forced` is a model of the
/// original with that cost.
[[nodiscard]] PreprocessResult preprocessWcnf(const WcnfFormula& formula);

}  // namespace msu
