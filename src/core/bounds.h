/// \file bounds.h
/// \brief Direct implementations of the paper's Propositions 1 and 2:
///        MaxSAT bounds from disjoint unsatisfiable cores and from
///        blocking-variable models. Used by the `core_bounds` example,
///        by tests, and as a documentation artifact of §2.3.

#pragma once

#include <vector>

#include "core/maxsat.h"
#include "cnf/wcnf.h"

namespace msu {

/// Result of disjoint-core enumeration on a plain MaxSAT instance.
struct DisjointCoresResult {
  /// Disjoint cores, each a set of soft-clause indices. Disjoint in the
  /// paper's sense: no two cores share a clause.
  std::vector<std::vector<int>> cores;

  /// Proposition 1: upper bound on satisfied clauses = numSoft - K.
  /// In cost terms: cost >= cores.size().
  [[nodiscard]] Weight costLowerBound() const {
    return static_cast<Weight>(cores.size());
  }

  /// True iff enumeration ran to completion within the budget.
  bool complete = false;

  std::int64_t satCalls = 0;
};

/// Enumerates disjoint unsatisfiable cores of the soft clauses (subject
/// to the hard clauses): repeatedly extract a core, remove its clauses,
/// and continue until the remainder is satisfiable.
[[nodiscard]] DisjointCoresResult disjointCores(const WcnfFormula& formula,
                                                const Budget& budget = {});

/// Proposition 2: computes a cost upper bound by relaxing every soft
/// clause and counting the blocking variables a single model sets to 1
/// (tightened to the model's true cost). Returns `nullopt` when the hard
/// clauses are unsatisfiable or the budget runs out.
struct BlockingBoundResult {
  Weight costUpperBound = 0;
  Assignment model;
};
[[nodiscard]] std::optional<BlockingBoundResult> blockingUpperBound(
    const WcnfFormula& formula, const Budget& budget = {});

}  // namespace msu
