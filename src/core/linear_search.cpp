#include "core/linear_search.h"

#include "core/incremental_atmost.h"
#include "core/oracle_session.h"

namespace msu {

LinearSearchSolver::LinearSearchSolver(MaxSatOptions options)
    : opts_(options) {}

std::string LinearSearchSolver::name() const {
  return std::string("linear-") + toString(opts_.encoding);
}

MaxSatResult LinearSearchSolver::solve(const WcnfFormula& input) {
  MaxSatResult result;
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return result;
  const WcnfFormula& formula = *reduced;
  const Weight m = formula.numSoft();

  OracleSession session(opts_);
  SoftTracker& tracker = session.trackSofts(formula);
  IncrementalAtMost card(opts_.encoding, opts_.reuseEncodings);

  // The PBO formulation: every clause gets its blocking variable at once.
  for (int i = 0; i < tracker.numSoft(); ++i) tracker.relax(i);

  if (!session.okay()) {
    result.status = MaxSatStatus::UnsatisfiableHard;
    session.exportStats(result);
    return result;
  }

  Weight upper = m + 1;
  Assignment bestModel;

  auto finish = [&](MaxSatStatus st) {
    result.status = st;
    result.lowerBound = (st == MaxSatStatus::Optimum) ? upper : 0;
    result.upperBound = std::min(upper, m);
    if (st == MaxSatStatus::Optimum) {
      result.cost = upper;
      result.model = std::move(bestModel);
    } else if (upper <= m) {
      result.model = std::move(bestModel);
    }
    session.exportStats(result);
    return result;
  };

  const std::vector<Lit> blocking = tracker.blockingLits();
  while (true) {
    ++result.iterations;
    const lbool st = session.solve();
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown);

    if (st == lbool::False) {
      if (upper > m) return finish(MaxSatStatus::UnsatisfiableHard);
      return finish(MaxSatStatus::Optimum);
    }

    const Weight nu =
        opts_.tightenWithModelCost
            ? tracker.relaxedFalsifiedCost(formula, session.sat().model())
            : tracker.blockingAssignedTrue(session.sat().model());
    if (nu < upper) {
      upper = nu;
      bestModel = tracker.originalModel(session.sat().model());
      if (opts_.onBounds) opts_.onBounds(0, upper);
    }
    if (upper == 0) return finish(MaxSatStatus::Optimum);
    // Each tightening retires the previous bound structure (unless the
    // encoding extends in place).
    card.assertAtMost(session.sink(), blocking, static_cast<int>(upper) - 1);
  }
}

}  // namespace msu
