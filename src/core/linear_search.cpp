#include "core/linear_search.h"

#include "core/incremental_atmost.h"
#include "core/soft_tracker.h"
#include "encodings/sink.h"

namespace msu {

LinearSearchSolver::LinearSearchSolver(MaxSatOptions options)
    : opts_(options) {}

std::string LinearSearchSolver::name() const {
  return std::string("linear-") + toString(opts_.encoding);
}

MaxSatResult LinearSearchSolver::solve(const WcnfFormula& input) {
  MaxSatResult result;
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return result;
  const WcnfFormula& formula = *reduced;
  const Weight m = formula.numSoft();

  Solver sat(opts_.sat);
  sat.setBudget(opts_.budget);
  SoftTracker tracker(sat, formula);
  SolverSink sink(sat);
  IncrementalAtMost card(opts_.encoding, opts_.reuseEncodings);

  // The PBO formulation: every clause gets its blocking variable at once.
  for (int i = 0; i < tracker.numSoft(); ++i) tracker.relax(i);

  if (!sat.okay()) {
    result.status = MaxSatStatus::UnsatisfiableHard;
    result.satStats = sat.stats();
    return result;
  }

  Weight upper = m + 1;
  Assignment bestModel;

  auto finish = [&](MaxSatStatus st) {
    result.status = st;
    result.lowerBound = (st == MaxSatStatus::Optimum) ? upper : 0;
    result.upperBound = std::min(upper, m);
    if (st == MaxSatStatus::Optimum) {
      result.cost = upper;
      result.model = std::move(bestModel);
    } else if (upper <= m) {
      result.model = std::move(bestModel);
    }
    result.satStats = sat.stats();
    return result;
  };

  const std::vector<Lit> blocking = tracker.blockingLits();
  while (true) {
    ++result.iterations;
    ++result.satCalls;
    const lbool st = sat.solve();
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown);

    if (st == lbool::False) {
      if (upper > m) return finish(MaxSatStatus::UnsatisfiableHard);
      return finish(MaxSatStatus::Optimum);
    }

    const Weight nu = opts_.tightenWithModelCost
                          ? tracker.relaxedFalsifiedCost(formula, sat.model())
                          : tracker.blockingAssignedTrue(sat.model());
    if (nu < upper) {
      upper = nu;
      bestModel = tracker.originalModel(sat.model());
      if (opts_.onBounds) opts_.onBounds(0, upper);
    }
    if (upper == 0) return finish(MaxSatStatus::Optimum);
    card.assertAtMost(sink, blocking, static_cast<int>(upper) - 1);
  }
}

}  // namespace msu
