#include "core/bmo.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "core/msu4.h"
#include "core/oll.h"
#include "core/oracle_session.h"
#include "encodings/sink.h"

namespace msu {

std::vector<Weight> bmoStrata(const WcnfFormula& formula) {
  std::map<Weight, Weight> totalByWeight;  // weight -> total at that weight
  for (const SoftClause& sc : formula.soft()) {
    totalByWeight[sc.weight] += sc.weight;
  }
  std::vector<Weight> strata;
  strata.reserve(totalByWeight.size());
  Weight below = 0;  // total weight of all strictly smaller strata
  for (const auto& [weight, total] : totalByWeight) {
    if (weight <= below) return {};  // domination violated
    strata.push_back(weight);
    below += total;
  }
  std::reverse(strata.begin(), strata.end());  // decreasing
  return strata;
}

BmoSolver::BmoSolver(MaxSatOptions options) : opts_(options) {}

std::string BmoSolver::name() const { return "bmo"; }

MaxSatResult BmoSolver::solve(const WcnfFormula& formula) {
  last_strata_ = 0;
  const std::vector<Weight> strata = bmoStrata(formula);
  if (strata.empty() && formula.numSoft() > 0) {
    // Not multilevel: delegate to the weighted-native engine.
    OllSolver fallback(opts_);
    return fallback.solve(formula);
  }
  last_strata_ = static_cast<int>(strata.size());

  // Working formula: original hards + every soft in relaxed hard form
  // `(C_i ∨ b_i)`; per level, the softs are the units `(¬b_i)` of that
  // stratum, and each solved level freezes `sum(b_level) <= optimum`.
  WcnfFormula working(formula.numVars());
  for (const Clause& c : formula.hard()) working.addHard(c);
  std::vector<Lit> blocking;
  blocking.reserve(static_cast<std::size_t>(formula.numSoft()));
  for (const SoftClause& sc : formula.soft()) {
    const Lit b = posLit(working.newVar());
    Clause relaxed = sc.lits;
    relaxed.push_back(b);
    working.addHard(relaxed);
    blocking.push_back(b);
  }

  MaxSatResult result;
  Weight totalCost = 0;
  Assignment lastModel;

  for (const Weight levelWeight : strata) {
    // Per-level unit-weight instance.
    WcnfFormula level = working;
    std::vector<Lit> levelBlocking;
    for (int i = 0; i < formula.numSoft(); ++i) {
      if (formula.soft()[static_cast<std::size_t>(i)].weight == levelWeight) {
        const Lit b = blocking[static_cast<std::size_t>(i)];
        level.addSoft({~b}, 1);
        levelBlocking.push_back(b);
      }
    }
    Msu4Solver engine(opts_);
    const MaxSatResult levelResult = engine.solve(level);
    result.iterations += levelResult.iterations;
    result.coresFound += levelResult.coresFound;
    result.satCalls += levelResult.satCalls;
    if (levelResult.status == MaxSatStatus::UnsatisfiableHard) {
      result.status = MaxSatStatus::UnsatisfiableHard;
      return result;
    }
    if (levelResult.status != MaxSatStatus::Optimum) {
      result.status = MaxSatStatus::Unknown;
      result.lowerBound = totalCost + levelWeight * levelResult.lowerBound;
      result.upperBound = formula.totalSoftWeight();
      return result;
    }
    totalCost += levelWeight * levelResult.cost;
    lastModel = levelResult.model;
    // Freeze this level's optimum before descending.
    WcnfHardSink sink(working);
    encodeAtMost(sink, levelBlocking, static_cast<int>(levelResult.cost),
                 opts_.encoding);
  }

  result.status = MaxSatStatus::Optimum;
  result.cost = totalCost;
  result.lowerBound = totalCost;
  result.upperBound = totalCost;
  // Restrict the last level's model to the original variables; with no
  // soft clauses at all there was no level and any hard model works.
  if (!strata.empty()) {
    lastModel.resize(static_cast<std::size_t>(formula.numVars()));
    result.model = std::move(lastModel);
    const std::optional<Weight> check = formula.cost(result.model);
    assert(check.has_value() && *check == totalCost);
    static_cast<void>(check);
  } else {
    // No softs: any model of the hards is optimal (cost 0).
    OracleSession session(opts_);
    session.addHards(formula);
    const lbool st = session.okay() ? session.solve() : lbool::False;
    session.exportStats(result);
    if (st == lbool::False) {
      result.status = MaxSatStatus::UnsatisfiableHard;
      return result;
    }
    if (st == lbool::Undef) {
      result.status = MaxSatStatus::Unknown;
      return result;
    }
    Assignment model(static_cast<std::size_t>(formula.numVars()));
    for (Var v = 0; v < formula.numVars(); ++v) {
      model[static_cast<std::size_t>(v)] =
          session.sat().model()[static_cast<std::size_t>(v)];
    }
    result.model = std::move(model);
  }
  return result;
}

}  // namespace msu
