#include "core/msu3.h"

#include <algorithm>

#include "core/soft_tracker.h"
#include "encodings/sink.h"
#include "encodings/totalizer.h"

namespace msu {

Msu3Solver::Msu3Solver(MaxSatOptions options) : opts_(options) {}

std::string Msu3Solver::name() const {
  return std::string("msu3-") + toString(opts_.encoding);
}

MaxSatResult Msu3Solver::solve(const WcnfFormula& input) {
  MaxSatResult result;
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return result;
  const WcnfFormula& formula = *reduced;
  const Weight m = formula.numSoft();

  Solver sat(opts_.sat);
  sat.setBudget(opts_.budget);
  SoftTracker tracker(sat, formula);
  SolverSink sink(sat);

  if (!sat.okay()) {
    result.status = MaxSatStatus::UnsatisfiableHard;
    result.satStats = sat.stats();
    return result;
  }

  Weight lambda = 0;  // proven: cost >= lambda

  // Incremental bound structure over the blocking variables. Totalizer
  // extends in place; other encodings are re-emitted per (set, bound)
  // change, with stale constraints retired through their activator.
  std::optional<Totalizer> totalizer;
  std::vector<Lit> covered;       // blocking set covered by the structure
  std::vector<Lit> sorterOut;     // Sorter outputs over `covered`
  std::optional<Lit> activator;   // Bdd/Sequential guarded instance
  Weight activeBound = -1;

  auto boundAssumption = [&]() -> std::optional<Lit> {
    const std::vector<Lit> blocking = tracker.blockingLits();
    if (lambda >= static_cast<Weight>(blocking.size())) return std::nullopt;
    const int k = static_cast<int>(lambda);
    switch (opts_.encoding) {
      case CardEncoding::Totalizer: {
        const bool prefixOk =
            blocking.size() >= covered.size() &&
            std::equal(covered.begin(), covered.end(), blocking.begin());
        if (!totalizer || !prefixOk) {
          totalizer.emplace(sink, blocking);
          covered = blocking;
        } else if (blocking.size() > covered.size()) {
          totalizer->addInputs(std::span<const Lit>(
              blocking.data() + covered.size(),
              blocking.size() - covered.size()));
          covered = blocking;
        }
        return ~totalizer->outputs()[static_cast<std::size_t>(k)];
      }
      case CardEncoding::Sorter: {
        if (blocking != covered) {
          sorterOut = buildSortingNetwork(sink, blocking);
          covered = blocking;
        }
        return ~sorterOut[static_cast<std::size_t>(k)];
      }
      default: {
        if (blocking != covered || activeBound != lambda) {
          if (activator) {
            // Retire the previous guarded instance permanently.
            sink.addClause({~*activator});
          }
          const Lit act = posLit(sink.newVar());
          encodeAtMost(sink, blocking, k, opts_.encoding, act);
          activator = act;
          covered = blocking;
          activeBound = lambda;
        }
        return *activator;
      }
    }
  };

  auto finish = [&](MaxSatStatus st, Weight cost, Assignment model) {
    result.status = st;
    result.lowerBound = lambda;
    result.upperBound = (st == MaxSatStatus::Optimum) ? cost : m;
    result.cost = (st == MaxSatStatus::Optimum) ? cost : 0;
    result.model = std::move(model);
    result.satStats = sat.stats();
    return result;
  };

  while (true) {
    ++result.iterations;
    ++result.satCalls;
    std::vector<Lit> assumps = tracker.assumptions();
    if (std::optional<Lit> b = boundAssumption()) assumps.push_back(*b);

    const lbool st = sat.solve(assumps);
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown, 0, {});

    if (st == lbool::True) {
      // Model cost can only be lambda: >= lambda is proven, <= lambda is
      // enforced by the bound assumption.
      const Weight cost = tracker.relaxedFalsifiedCost(formula, sat.model());
      return finish(MaxSatStatus::Optimum, cost,
                    tracker.originalModel(sat.model()));
    }

    ++result.coresFound;
    const std::vector<Lit>& core = sat.core();
    if (core.empty()) {
      return finish(MaxSatStatus::UnsatisfiableHard, 0, {});
    }
    std::vector<int> coreSoft = tracker.coreSoftIndices(core);
    // The bound literal can alias a selector variable (a 1-input sorter /
    // totalizer returns its input), so the core may name already-relaxed
    // clauses; only still-enforced ones warrant relaxation.
    std::erase_if(coreSoft, [&](int i) { return tracker.isRelaxed(i); });
    if (!coreSoft.empty()) {
      // The core names soft clauses that are still hard-enforced: relax
      // them and retry at the same bound. (Incrementing lambda here
      // would be unsound: a cost-lambda assignment may falsify exactly
      // such a not-yet-relaxed clause, which the assumptions exclude
      // rather than count.)
      for (int i : coreSoft) tracker.relax(i);
      continue;
    }
    // The core lies entirely within hards + relaxed clauses + the bound:
    // every assignment falsifies more than lambda relaxed clauses, so
    // the optimum exceeds lambda.
    lambda += 1;
    if (opts_.onBounds) opts_.onBounds(lambda, m + 1);
  }
}

}  // namespace msu
