#include "core/msu3.h"

#include "core/incremental_atmost.h"
#include "core/oracle_session.h"

namespace msu {

Msu3Solver::Msu3Solver(MaxSatOptions options) : opts_(options) {}

std::string Msu3Solver::name() const {
  return std::string("msu3-") + toString(opts_.encoding);
}

MaxSatResult Msu3Solver::solve(const WcnfFormula& input) {
  MaxSatResult result;
  const std::optional<WcnfFormula> reduced = input.unweighted();
  if (!reduced) return result;
  const WcnfFormula& formula = *reduced;
  const Weight m = formula.numSoft();

  OracleSession session(opts_);
  SoftTracker& tracker = session.trackSofts(formula);

  if (!session.okay()) {
    result.status = MaxSatStatus::UnsatisfiableHard;
    session.exportStats(result);
    return result;
  }

  Weight lambda = 0;  // proven: cost >= lambda

  // Incremental bound structure over the blocking variables: totalizers
  // extend in place, everything else re-encodes into a fresh scope and
  // retires its predecessor through the session's oracle.
  IncrementalAtMost card(opts_.encoding, opts_.reuseEncodings);

  auto finish = [&](MaxSatStatus st, Weight cost, Assignment model) {
    result.status = st;
    result.lowerBound = lambda;
    result.upperBound = (st == MaxSatStatus::Optimum) ? cost : m;
    result.cost = (st == MaxSatStatus::Optimum) ? cost : 0;
    result.model = std::move(model);
    session.exportStats(result);
    return result;
  };

  while (true) {
    ++result.iterations;
    std::vector<Lit> extra;
    if (const std::optional<Lit> b = card.assumeAtMost(
            session.sink(), tracker.blockingLits(), static_cast<int>(lambda))) {
      extra.push_back(*b);
    }

    const lbool st = session.solve(extra);
    if (st == lbool::Undef) return finish(MaxSatStatus::Unknown, 0, {});

    if (st == lbool::True) {
      // Model cost can only be lambda: >= lambda is proven, <= lambda is
      // enforced by the bound assumption.
      const Weight cost =
          tracker.relaxedFalsifiedCost(formula, session.sat().model());
      return finish(MaxSatStatus::Optimum, cost,
                    tracker.originalModel(session.sat().model()));
    }

    ++result.coresFound;
    const std::vector<Lit>& core = session.sat().core();
    if (core.empty()) {
      return finish(MaxSatStatus::UnsatisfiableHard, 0, {});
    }
    std::vector<int> coreSoft = tracker.coreSoftIndices(core);
    // The bound literal can alias a selector variable (a 1-input sorter /
    // totalizer returns its input), so the core may name already-relaxed
    // clauses; only still-enforced ones warrant relaxation.
    std::erase_if(coreSoft, [&](int i) { return tracker.isRelaxed(i); });
    if (!coreSoft.empty()) {
      // The core names soft clauses that are still hard-enforced: relax
      // them and retry at the same bound. (Incrementing lambda here
      // would be unsound: a cost-lambda assignment may falsify exactly
      // such a not-yet-relaxed clause, which the assumptions exclude
      // rather than count.)
      for (int i : coreSoft) tracker.relax(i);
      continue;
    }
    // The core lies entirely within hards + relaxed clauses + the bound:
    // every assignment falsifies more than lambda relaxed clauses, so
    // the optimum exceeds lambda.
    lambda += 1;
    if (opts_.onBounds) opts_.onBounds(lambda, m + 1);
  }
}

}  // namespace msu
