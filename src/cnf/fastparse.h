/// \file fastparse.h
/// \brief Zero-copy parser core shared by the DIMACS CNF, WCNF (old
///        `p wcnf` and 2022 `h`-line) and OPB front ends.
///
/// The huge-instance ingest path: an `InputBuffer` owns the raw bytes
/// (mmap(2) for regular files, a single read()-into-buffer slurp for
/// pipes and streams, or a borrowed view for in-memory strings) and a
/// `FastCursor` scans them with a hand-rolled pointer-bumping lexer —
/// no iostreams, no per-token std::string, branch-light digit loops.
/// `dimacs.cpp` and `opb.cpp` are thin adapters over this core; the
/// previous istream tokenizers survive as `*Legacy` entry points for
/// differential testing and as the bench_parse A/B baseline.
///
/// Comment handling is strictly line-anchored: a comment begins only
/// when the comment character ('c' for DIMACS, '*' for OPB) is the
/// first non-blank character of a line. A token like `cat` in the
/// middle of a clause is a parse error, never a silent comment-to-EOL
/// (the legacy tokenizer's fragile leading-'c' heuristic). A line
/// whose first non-blank character is '%' ends the input (SAT
/// competition convention) when the format enables it.
///
/// Errors are reported with 1-based line numbers and thrown as
/// DimacsError (format parsers with their own error type, e.g. OPB's
/// OpbError, use the non-throwing primitives and throw their own).

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "cnf/dimacs.h"

namespace msu {

/// Owns (or borrows) the bytes of one input. Move-only; unmaps/frees on
/// destruction. `data()` is NOT NUL-terminated — always honor `size()`.
class InputBuffer {
 public:
  /// Maps `path` with mmap(2); falls back to read()-into-buffer when
  /// the file is not mappable (pipe, /proc, zero-length). Throws
  /// DimacsError when the file cannot be opened or read.
  [[nodiscard]] static InputBuffer fromFile(const std::string& path);

  /// Slurps a stream to EOF into an owned buffer (the pipe path).
  [[nodiscard]] static InputBuffer fromStream(std::istream& in);

  /// Takes ownership of `text`.
  [[nodiscard]] static InputBuffer fromString(std::string text);

  /// Borrows `[data, data+size)` without copying; the caller keeps the
  /// bytes alive for the buffer's lifetime.
  [[nodiscard]] static InputBuffer borrow(const char* data, std::size_t size);

  InputBuffer() = default;
  InputBuffer(InputBuffer&& other) noexcept { *this = std::move(other); }
  InputBuffer& operator=(InputBuffer&& other) noexcept;
  InputBuffer(const InputBuffer&) = delete;
  InputBuffer& operator=(const InputBuffer&) = delete;
  ~InputBuffer() { release(); }

  [[nodiscard]] const char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// True iff the bytes came from mmap (vs an owned or borrowed buffer);
  /// lets tests pin mmap-vs-fallback equivalence.
  [[nodiscard]] bool mapped() const { return mapped_; }

 private:
  void release();

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  bool owns_ = false;  // data_ points into owned_ (re-derived on move)
  std::string owned_;
};

/// Pointer-bumping lexer over a byte range. Tracks line numbers for
/// diagnostics and skips line-anchored comment lines transparently.
class FastCursor {
 public:
  FastCursor(const char* data, std::size_t size, char commentChar,
             bool percentEndsInput)
      : p_(data),
        end_(data + size),
        comment_(commentChar),
        percent_eof_(percentEndsInput) {}

  explicit FastCursor(const InputBuffer& buf, char commentChar = 'c',
                      bool percentEndsInput = true)
      : FastCursor(buf.data(), buf.size(), commentChar, percentEndsInput) {}

  /// Advances to the first character of the next token, skipping
  /// whitespace, blank lines and comment lines. Returns false at end of
  /// input (including a '%' terminator line).
  bool skipToToken();

  /// First character of the pending token; call after skipToToken().
  [[nodiscard]] char peek() const { return *p_; }

  /// skipToToken() + integer parse (optional sign, then digits, ending
  /// at whitespace). Throws DimacsError naming `what`, the offending
  /// token and the line on malformed input, overflow or end of input.
  std::int64_t readInt(const char* what);

  /// skipToToken() + scan of one whitespace-delimited token as a view
  /// into the buffer (no allocation). Empty view at end of input.
  std::string_view readWord();

  /// readInt with an inlined fast path for clean short tokens (sign +
  /// <= 9 digits followed by whitespace). Anything else — comments to
  /// skip, long or malformed tokens, end of input — falls back to
  /// readInt unchanged, so values and diagnostics are identical. Used
  /// for per-clause weights, where readInt's call-per-token overhead
  /// shows up on huge WCNF inputs.
  std::int64_t readIntQuick(const char* what);

  /// Fused clause-body reader: `<lits> 0` with a declared-range check
  /// against `maxVar`, appended to `out` (cleared first). Semantically
  /// identical to a readInt("literal") loop — every irregular token
  /// (overlong digits, stray word, mid-clause end of input) is re-read
  /// through readInt so diagnostics match exactly — but the common
  /// all-digit case keeps the cursor in registers across the whole
  /// clause. This loop is most of the parse wall on huge instances.
  void readClauseLits(int maxVar, Clause& out);

  /// Skips blanks (not newlines) and throws DimacsError naming `where`
  /// unless positioned at end of line / end of input. Pins the strict
  /// "no trailing tokens" rule for header lines.
  void expectEndOfLine(const char* where);

  /// True iff another token sits on the current line (lookahead only;
  /// consumes nothing). Distinguishes an optional trailing field (the
  /// wcnf header's `top`) from the end of a line.
  [[nodiscard]] bool peekMoreOnLine() const;

  /// 1-based line number of the cursor position.
  [[nodiscard]] int line() const { return line_; }

  /// Throws DimacsError with `msg` and the current line appended.
  [[noreturn]] void fail(const std::string& msg) const;

 private:
  /// Token under the cursor as a view (for error messages).
  [[nodiscard]] std::string_view pendingToken() const;

  const char* p_;
  const char* end_;
  int line_ = 1;
  bool bol_ = true;  // at line start (only blanks seen on this line)
  char comment_;
  bool percent_eof_;
};

class Solver;

/// Streams a DIMACS CNF straight into `solver` under one bulk-load
/// scope — no intermediate CnfFormula and no per-clause heap
/// allocation (clauses land in the solver's flat arena as they are
/// lexed). The fastest ingest path for huge instances; grows the
/// solver's variable universe to the header's declared count. Returns
/// `solver.okay()` after the final root-level propagation. Throws
/// DimacsError on malformed input.
bool fastLoadDimacsCnfInto(const InputBuffer& buf, Solver& solver);

/// Parses DIMACS CNF from a buffer. Throws DimacsError.
[[nodiscard]] CnfFormula fastParseDimacsCnf(const InputBuffer& buf);

/// Parses DIMACS WCNF from a buffer: the old `p wcnf <vars> <clauses>
/// [top]` format, the 2022 headerless format (`h`-prefixed hard
/// clauses, weight-prefixed softs), or a plain `p cnf` instance lifted
/// to all-soft weight 1. Throws DimacsError.
[[nodiscard]] WcnfFormula fastParseDimacsWcnf(const InputBuffer& buf);

}  // namespace msu
