/// \file literal.h
/// \brief Fundamental propositional types: variables, literals and the
///        three-valued logic value used across the library.
///
/// The representation follows the MiniSat convention: a variable is a
/// 0-based integer, a literal packs a variable and a sign into a single
/// integer (`2*var + sign`), so literals index arrays directly (watch
/// lists, saved phases, ...).

#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace msu {

/// A propositional variable, 0-based. Negative values are invalid except
/// for the sentinel `kUndefVar`.
using Var = std::int32_t;

/// Sentinel for "no variable".
inline constexpr Var kUndefVar = -1;

/// A literal: a variable together with a sign.
///
/// Internally encoded as `2*var + sign` where `sign == 1` means the
/// negative (complemented) literal. Encoded values are non-negative for
/// valid literals, which makes `Lit::index()` suitable for direct array
/// indexing.
class Lit {
 public:
  /// Constructs the undefined literal.
  constexpr Lit() = default;

  /// Constructs a literal over `v`; `negative == true` yields `¬v`.
  constexpr Lit(Var v, bool negative) : code_(2 * v + (negative ? 1 : 0)) {
    assert(v >= 0);
  }

  /// Rebuilds a literal from its raw encoding (e.g. from `index()`).
  [[nodiscard]] static constexpr Lit fromIndex(std::int32_t index) {
    Lit p;
    p.code_ = index;
    return p;
  }

  /// Builds a literal from a DIMACS integer (non-zero; negative = negated).
  [[nodiscard]] static constexpr Lit fromDimacs(std::int32_t dimacs) {
    assert(dimacs != 0);
    return dimacs > 0 ? Lit(dimacs - 1, false) : Lit(-dimacs - 1, true);
  }

  /// The underlying variable.
  [[nodiscard]] constexpr Var var() const { return code_ >> 1; }

  /// True iff this is the negative literal of its variable.
  [[nodiscard]] constexpr bool negative() const { return (code_ & 1) != 0; }

  /// True iff this is the positive literal of its variable.
  [[nodiscard]] constexpr bool positive() const { return !negative(); }

  /// Raw encoding, usable as a dense array index.
  [[nodiscard]] constexpr std::int32_t index() const { return code_; }

  /// True iff this literal carries a real variable.
  [[nodiscard]] constexpr bool defined() const { return code_ >= 0; }

  /// DIMACS form: 1-based, sign carries polarity.
  [[nodiscard]] constexpr std::int32_t toDimacs() const {
    return negative() ? -(var() + 1) : (var() + 1);
  }

  /// Complement.
  [[nodiscard]] constexpr Lit operator~() const {
    assert(defined());
    return fromIndex(code_ ^ 1);
  }

  friend constexpr auto operator<=>(Lit, Lit) = default;

 private:
  std::int32_t code_ = -2;
};

/// Sentinel for "no literal".
inline constexpr Lit kUndefLit{};

/// Convenience factory mirroring MiniSat's `mkLit`.
[[nodiscard]] constexpr Lit mkLit(Var v, bool negative = false) {
  return Lit(v, negative);
}

/// Positive literal of `v`.
[[nodiscard]] constexpr Lit posLit(Var v) { return Lit(v, false); }

/// Negative literal of `v`.
[[nodiscard]] constexpr Lit negLit(Var v) { return Lit(v, true); }

/// Three-valued logic constant: true, false or undefined.
enum class lbool : std::uint8_t { False = 0, True = 1, Undef = 2 };

/// Lifts a bool into lbool.
[[nodiscard]] constexpr lbool toLbool(bool b) {
  return b ? lbool::True : lbool::False;
}

/// Negation over lbool; Undef is a fixed point.
[[nodiscard]] constexpr lbool operator~(lbool v) {
  switch (v) {
    case lbool::False:
      return lbool::True;
    case lbool::True:
      return lbool::False;
    default:
      return lbool::Undef;
  }
}

/// Applies the sign of a literal to a variable value: the value of literal
/// `p` when `p.var()` has value `v`.
[[nodiscard]] constexpr lbool applySign(lbool v, Lit p) {
  return p.negative() ? ~v : v;
}

/// Human-readable literal, e.g. "x3" / "~x3".
[[nodiscard]] std::string toString(Lit p);

/// Human-readable lbool: "T" / "F" / "U".
[[nodiscard]] std::string toString(lbool v);

std::ostream& operator<<(std::ostream& os, Lit p);
std::ostream& operator<<(std::ostream& os, lbool v);

}  // namespace msu

template <>
struct std::hash<msu::Lit> {
  std::size_t operator()(msu::Lit p) const noexcept {
    return std::hash<std::int32_t>{}(p.index());
  }
};
