#include "cnf/formula.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace msu {

std::int64_t CnfFormula::numLiterals() const {
  std::int64_t n = 0;
  for (const Clause& c : clauses_) n += static_cast<std::int64_t>(c.size());
  return n;
}

std::int64_t CnfFormula::memBytesEstimate() const {
  std::int64_t bytes =
      static_cast<std::int64_t>(clauses_.capacity() * sizeof(Clause));
  for (const Clause& c : clauses_) {
    bytes += static_cast<std::int64_t>(c.capacity() * sizeof(Lit));
  }
  return bytes;
}

void CnfFormula::addClause(std::span<const Lit> lits) {
  addClause(Clause(lits.begin(), lits.end()));
}

void CnfFormula::addClause(Clause&& lits) {
  for (Lit p : lits) {
    assert(p.defined());
    ensureVars(p.var() + 1);
  }
  clauses_.push_back(std::move(lits));
}

bool CnfFormula::clauseSatisfied(int i, const Assignment& a) const {
  for (Lit p : clauses_[i]) {
    if (applySign(a[p.var()], p) == lbool::True) return true;
  }
  return false;
}

int CnfFormula::numSatisfied(const Assignment& a) const {
  int n = 0;
  for (int i = 0; i < numClauses(); ++i) {
    if (clauseSatisfied(i, a)) ++n;
  }
  return n;
}

CnfFormula CnfFormula::normalized() const {
  CnfFormula out(num_vars_);
  std::set<Clause> seen;
  for (const Clause& c : clauses_) {
    if (isTautology(c)) continue;
    Clause n = normalizedClause(c);
    if (seen.insert(n).second) out.addClause(std::move(n));
  }
  return out;
}

std::string CnfFormula::summary() const {
  std::ostringstream os;
  os << "CNF(vars=" << num_vars_ << ", clauses=" << numClauses() << ")";
  return os.str();
}

bool isTautology(std::span<const Lit> lits) {
  Clause sorted(lits.begin(), lits.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == ~sorted[i - 1]) return true;
  }
  return false;
}

Clause normalizedClause(std::span<const Lit> lits) {
  Clause out(lits.begin(), lits.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace msu
