#include "cnf/literal.h"

#include <ostream>

namespace msu {

std::string toString(Lit p) {
  if (!p.defined()) return "lit-undef";
  std::string s = p.negative() ? "~x" : "x";
  return s + std::to_string(p.var());
}

std::string toString(lbool v) {
  switch (v) {
    case lbool::True:
      return "T";
    case lbool::False:
      return "F";
    default:
      return "U";
  }
}

std::ostream& operator<<(std::ostream& os, Lit p) { return os << toString(p); }

std::ostream& operator<<(std::ostream& os, lbool v) {
  return os << toString(v);
}

}  // namespace msu
