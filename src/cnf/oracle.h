/// \file oracle.h
/// \brief Exhaustive reference procedures used as ground truth in tests
///        and small-scale experiments. Exponential in the number of
///        variables; guarded against accidental use on large inputs.

#pragma once

#include <optional>

#include "cnf/formula.h"
#include "cnf/wcnf.h"

namespace msu {

/// Result of the exhaustive MaxSAT oracle.
struct OracleResult {
  /// Minimum total weight of falsified soft clauses over assignments
  /// satisfying all hard clauses; unset iff the hard clauses are
  /// unsatisfiable.
  std::optional<Weight> optimumCost;
  /// A witnessing optimal assignment (complete), when optimumCost is set.
  Assignment model;
};

/// Maximum variable count the oracles accept (2^26 evaluations worst case
/// is already seconds; tests stay far below).
inline constexpr int kOracleMaxVars = 26;

/// Exhaustive SAT check. Returns a model if satisfiable.
/// Precondition: `cnf.numVars() <= kOracleMaxVars`.
[[nodiscard]] std::optional<Assignment> oracleSat(const CnfFormula& cnf);

/// Exhaustive MaxSAT: minimizes falsified soft weight subject to hard
/// clauses. Precondition: `wcnf.numVars() <= kOracleMaxVars`.
[[nodiscard]] OracleResult oracleMaxSat(const WcnfFormula& wcnf);

/// Exhaustive check that `cnf` is unsatisfiable (convenience).
[[nodiscard]] bool oracleUnsat(const CnfFormula& cnf);

/// Exhaustive check that a clause subset (given by indices into
/// `cnf.clauses()`) is unsatisfiable — used to validate extracted cores.
[[nodiscard]] bool oracleSubsetUnsat(const CnfFormula& cnf,
                                     std::span<const int> clauseIndices);

}  // namespace msu
