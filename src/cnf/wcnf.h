/// \file wcnf.h
/// \brief (Partial) MaxSAT formulas: hard clauses plus weighted soft
///        clauses. The DATE'08 paper evaluates plain (all-soft, unit
///        weight) MaxSAT; the engines in this library accept hard clauses
///        too, and weights are supported via documented duplication.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cnf/formula.h"
#include "cnf/literal.h"

namespace msu {

/// Weight of a soft clause. Hard clauses are represented separately, not
/// with a "top" weight.
using Weight = std::int64_t;

/// A soft clause: literals plus a positive weight.
struct SoftClause {
  Clause lits;
  Weight weight = 1;
};

/// A (partial, weighted) MaxSAT instance.
///
/// Semantics: find an assignment satisfying every hard clause that
/// minimizes the total weight of falsified soft clauses ("cost").
/// A plain MaxSAT instance has no hard clauses and unit weights.
class WcnfFormula {
 public:
  WcnfFormula() = default;

  /// Creates an instance with `numVars` variables.
  explicit WcnfFormula(int numVars) : num_vars_(numVars) {}

  /// Lifts a plain CNF formula into a plain MaxSAT instance (all clauses
  /// soft with weight 1) — the setting of the DATE'08 evaluation.
  [[nodiscard]] static WcnfFormula allSoft(const CnfFormula& cnf);

  [[nodiscard]] int numVars() const { return num_vars_; }
  [[nodiscard]] int numHard() const { return static_cast<int>(hard_.size()); }
  [[nodiscard]] int numSoft() const { return static_cast<int>(soft_.size()); }

  /// Sum of all soft weights (the worst possible cost).
  [[nodiscard]] Weight totalSoftWeight() const;

  /// Reserves a fresh variable and returns its id.
  Var newVar() { return num_vars_++; }

  /// Ensures at least `n` variables exist.
  void ensureVars(int n) {
    if (n > num_vars_) num_vars_ = n;
  }

  /// Appends a hard clause.
  void addHard(std::span<const Lit> lits);
  void addHard(std::initializer_list<Lit> lits) {
    addHard(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// Appends a soft clause with the given (positive) weight.
  void addSoft(std::span<const Lit> lits, Weight weight = 1);
  void addSoft(std::initializer_list<Lit> lits, Weight weight = 1) {
    addSoft(std::span<const Lit>(lits.begin(), lits.size()), weight);
  }

  [[nodiscard]] const std::vector<Clause>& hard() const { return hard_; }
  [[nodiscard]] const std::vector<SoftClause>& soft() const { return soft_; }

  /// True iff every weight is 1.
  [[nodiscard]] bool isUnweighted() const;

  /// True iff there are no hard clauses (plain MaxSAT).
  [[nodiscard]] bool isPlain() const { return hard_.empty(); }

  /// Returns an equivalent unit-weight instance obtained by duplicating
  /// each soft clause `weight` times, or `nullopt` if the total number of
  /// duplicated clauses would exceed `maxClauses`. Cost values carry over
  /// unchanged.
  [[nodiscard]] std::optional<WcnfFormula> unweighted(
      std::int64_t maxClauses = 1'000'000) const;

  /// Cost (total weight of falsified soft clauses) of a complete
  /// assignment, or `nullopt` if it violates a hard clause.
  [[nodiscard]] std::optional<Weight> cost(const Assignment& a) const;

  /// Paper-style objective: number of satisfied soft clauses under `a`
  /// (only meaningful for unweighted instances), or nullopt if a hard
  /// clause is violated.
  [[nodiscard]] std::optional<int> numSoftSatisfied(const Assignment& a) const;

  /// Heap bytes held by the clause storage (capacities, not sizes) —
  /// the formula's contribution to an end-to-end memory budget (see
  /// Solver::Options::external_mem_bytes).
  [[nodiscard]] std::int64_t memBytesEstimate() const;

  /// One-line summary.
  [[nodiscard]] std::string summary() const;

 private:
  int num_vars_ = 0;
  std::vector<Clause> hard_;
  std::vector<SoftClause> soft_;
};

}  // namespace msu
