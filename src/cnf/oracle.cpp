#include "cnf/oracle.h"

#include <cassert>

namespace msu {
namespace {

/// Fills `a` from the bits of `mask` (variable v <- bit v).
void assignmentFromMask(std::uint64_t mask, int numVars, Assignment& a) {
  a.resize(numVars);
  for (int v = 0; v < numVars; ++v) {
    a[v] = toLbool(((mask >> v) & 1u) != 0);
  }
}

}  // namespace

std::optional<Assignment> oracleSat(const CnfFormula& cnf) {
  assert(cnf.numVars() <= kOracleMaxVars);
  const int n = cnf.numVars();
  Assignment a;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    assignmentFromMask(mask, n, a);
    if (cnf.satisfies(a)) return a;
  }
  return std::nullopt;
}

OracleResult oracleMaxSat(const WcnfFormula& wcnf) {
  assert(wcnf.numVars() <= kOracleMaxVars);
  const int n = wcnf.numVars();
  OracleResult best;
  Assignment a;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    assignmentFromMask(mask, n, a);
    std::optional<Weight> c = wcnf.cost(a);
    if (!c) continue;
    if (!best.optimumCost || *c < *best.optimumCost) {
      best.optimumCost = *c;
      best.model = a;
      if (*c == 0) break;  // cannot improve
    }
  }
  return best;
}

bool oracleUnsat(const CnfFormula& cnf) { return !oracleSat(cnf).has_value(); }

bool oracleSubsetUnsat(const CnfFormula& cnf,
                       std::span<const int> clauseIndices) {
  CnfFormula sub(cnf.numVars());
  for (int i : clauseIndices) sub.addClause(cnf.clause(i));
  return oracleUnsat(sub);
}

}  // namespace msu
