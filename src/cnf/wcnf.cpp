#include "cnf/wcnf.h"

#include <sstream>

namespace msu {

WcnfFormula WcnfFormula::allSoft(const CnfFormula& cnf) {
  WcnfFormula out(cnf.numVars());
  for (const Clause& c : cnf.clauses()) out.addSoft(c, 1);
  return out;
}

Weight WcnfFormula::totalSoftWeight() const {
  Weight w = 0;
  for (const SoftClause& s : soft_) w += s.weight;
  return w;
}

void WcnfFormula::addHard(std::span<const Lit> lits) {
  for (Lit p : lits) {
    assert(p.defined());
    ensureVars(p.var() + 1);
  }
  hard_.emplace_back(lits.begin(), lits.end());
}

void WcnfFormula::addSoft(std::span<const Lit> lits, Weight weight) {
  assert(weight > 0);
  for (Lit p : lits) {
    assert(p.defined());
    ensureVars(p.var() + 1);
  }
  soft_.push_back(SoftClause{Clause(lits.begin(), lits.end()), weight});
}

bool WcnfFormula::isUnweighted() const {
  for (const SoftClause& s : soft_) {
    if (s.weight != 1) return false;
  }
  return true;
}

std::optional<WcnfFormula> WcnfFormula::unweighted(
    std::int64_t maxClauses) const {
  std::int64_t total = totalSoftWeight();
  if (total > maxClauses) return std::nullopt;
  WcnfFormula out(num_vars_);
  for (const Clause& h : hard_) out.addHard(h);
  for (const SoftClause& s : soft_) {
    for (Weight k = 0; k < s.weight; ++k) out.addSoft(s.lits, 1);
  }
  return out;
}

namespace {

bool clauseSat(const Clause& c, const Assignment& a) {
  for (Lit p : c) {
    if (applySign(a[p.var()], p) == lbool::True) return true;
  }
  return false;
}

}  // namespace

std::optional<Weight> WcnfFormula::cost(const Assignment& a) const {
  for (const Clause& h : hard_) {
    if (!clauseSat(h, a)) return std::nullopt;
  }
  Weight w = 0;
  for (const SoftClause& s : soft_) {
    if (!clauseSat(s.lits, a)) w += s.weight;
  }
  return w;
}

std::optional<int> WcnfFormula::numSoftSatisfied(const Assignment& a) const {
  for (const Clause& h : hard_) {
    if (!clauseSat(h, a)) return std::nullopt;
  }
  int n = 0;
  for (const SoftClause& s : soft_) {
    if (clauseSat(s.lits, a)) ++n;
  }
  return n;
}

std::int64_t WcnfFormula::memBytesEstimate() const {
  std::int64_t bytes =
      static_cast<std::int64_t>(hard_.capacity() * sizeof(Clause)) +
      static_cast<std::int64_t>(soft_.capacity() * sizeof(SoftClause));
  for (const Clause& h : hard_) {
    bytes += static_cast<std::int64_t>(h.capacity() * sizeof(Lit));
  }
  for (const SoftClause& s : soft_) {
    bytes += static_cast<std::int64_t>(s.lits.capacity() * sizeof(Lit));
  }
  return bytes;
}

std::string WcnfFormula::summary() const {
  std::ostringstream os;
  os << "WCNF(vars=" << num_vars_ << ", hard=" << numHard()
     << ", soft=" << numSoft() << ")";
  return os.str();
}

}  // namespace msu
