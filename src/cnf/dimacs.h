/// \file dimacs.h
/// \brief DIMACS CNF and (old-style) WCNF reading and writing.
///
/// Supported formats:
///  * CNF:  `p cnf <vars> <clauses>` followed by 0-terminated clauses.
///  * WCNF: `p wcnf <vars> <clauses> [top]` where each clause starts with
///    a weight; weight == top (when given) marks a hard clause.
/// Comments (`c ...`) and blank lines are ignored. Parsing is strict about
/// literal ranges but tolerant about the clause count in the header.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "cnf/formula.h"
#include "cnf/wcnf.h"

namespace msu {

/// Error raised on malformed DIMACS input.
class DimacsError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a DIMACS CNF stream. Throws DimacsError on malformed input.
///
/// All readers below are thin adapters over the zero-copy parser core
/// in fastparse.h: `loadDimacs*` mmaps the file, `parseDimacs*` scans
/// the string in place, and the istream overloads slurp the stream
/// once and scan the buffer (the pipe path). Comments are strictly
/// line-anchored ('c' first on its line); a '%' line ends the input
/// (SAT-competition convention).
[[nodiscard]] CnfFormula readDimacsCnf(std::istream& in);

/// Parses a DIMACS CNF string.
[[nodiscard]] CnfFormula parseDimacsCnf(const std::string& text);

/// Parses a DIMACS WCNF stream (or a plain CNF stream, which is lifted to
/// an all-soft instance). Throws DimacsError on malformed input.
[[nodiscard]] WcnfFormula readDimacsWcnf(std::istream& in);

/// Parses a DIMACS WCNF string.
[[nodiscard]] WcnfFormula parseDimacsWcnf(const std::string& text);

/// Loads a CNF file from disk. Throws DimacsError (also for I/O failure).
[[nodiscard]] CnfFormula loadDimacsCnf(const std::string& path);

/// Loads a WCNF (or CNF) file from disk. Throws DimacsError.
[[nodiscard]] WcnfFormula loadDimacsWcnf(const std::string& path);

/// Legacy istream tokenizer readers (the pre-fastparse implementation),
/// kept for differential fuzzing and as the bench_parse A/B baseline.
/// Known quirk the new core fixes: a mid-clause token with a leading
/// 'c' (e.g. `cat`) is silently eaten as a comment-to-EOL here.
[[nodiscard]] CnfFormula readDimacsCnfLegacy(std::istream& in);
[[nodiscard]] WcnfFormula readDimacsWcnfLegacy(std::istream& in);

/// Writes DIMACS CNF.
void writeDimacsCnf(std::ostream& out, const CnfFormula& cnf);

/// Writes DIMACS WCNF (top = totalSoftWeight + 1).
void writeDimacsWcnf(std::ostream& out, const WcnfFormula& wcnf);

/// CNF to DIMACS string.
[[nodiscard]] std::string toDimacsString(const CnfFormula& cnf);

/// WCNF to DIMACS string.
[[nodiscard]] std::string toDimacsString(const WcnfFormula& wcnf);

}  // namespace msu
