#include "cnf/fastparse.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <istream>
#include <limits>
#include <optional>
#include <utility>

#include "sat/solver.h"

namespace msu {

// ---- InputBuffer ---------------------------------------------------------

InputBuffer& InputBuffer::operator=(InputBuffer&& other) noexcept {
  if (this != &other) {
    release();
    mapped_ = other.mapped_;
    owns_ = other.owns_;
    size_ = other.size_;
    owned_ = std::move(other.owned_);
    // Moving the owned string may relocate its bytes (SSO), so re-derive
    // the view; mapped/borrowed views are stable.
    data_ = owns_ ? owned_.data() : other.data_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    other.owns_ = false;
  }
  return *this;
}

void InputBuffer::release() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  owns_ = false;
  owned_ = std::string();
}

InputBuffer InputBuffer::fromFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw DimacsError("cannot open file: " + path);
  struct stat st{};
  const bool statOk = ::fstat(fd, &st) == 0;
  if (statOk && S_ISREG(st.st_mode) && st.st_size > 0) {
    void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
#ifdef POSIX_MADV_SEQUENTIAL
      ::posix_madvise(map, static_cast<std::size_t>(st.st_size),
                      POSIX_MADV_SEQUENTIAL);
#endif
      InputBuffer buf;
      buf.data_ = static_cast<const char*>(map);
      buf.size_ = static_cast<std::size_t>(st.st_size);
      buf.mapped_ = true;
      return buf;
    }
  }
  // Fallback: pipes, special files, or an mmap refusal — read() it all.
  std::string text;
  if (statOk && st.st_size > 0) text.reserve(static_cast<std::size_t>(st.st_size));
  char chunk[1 << 16];
  for (;;) {
    const ::ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      text.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    ::close(fd);
    throw DimacsError("cannot read file: " + path);
  }
  ::close(fd);
  return fromString(std::move(text));
}

InputBuffer InputBuffer::fromStream(std::istream& in) {
  std::string text;
  char chunk[1 << 16];
  while (in) {
    in.read(chunk, sizeof chunk);
    const std::streamsize n = in.gcount();
    if (n > 0) text.append(chunk, static_cast<std::size_t>(n));
  }
  return fromString(std::move(text));
}

InputBuffer InputBuffer::fromString(std::string text) {
  InputBuffer buf;
  buf.owned_ = std::move(text);
  buf.data_ = buf.owned_.data();
  buf.size_ = buf.owned_.size();
  buf.owns_ = true;
  return buf;
}

InputBuffer InputBuffer::borrow(const char* data, std::size_t size) {
  InputBuffer buf;
  buf.data_ = data;
  buf.size_ = size;
  return buf;
}

// ---- FastCursor ----------------------------------------------------------

namespace {

inline bool isBlank(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v';
}

inline bool endsToken(char c) { return isBlank(c) || c == '\n'; }

}  // namespace

bool FastCursor::skipToToken() {
  while (p_ != end_) {
    const char c = *p_;
    if (isBlank(c)) {
      ++p_;
      continue;
    }
    if (c == '\n') {
      ++p_;
      ++line_;
      bol_ = true;
      continue;
    }
    if (bol_) {
      if (c == comment_) {
        while (p_ != end_ && *p_ != '\n') ++p_;
        continue;
      }
      if (percent_eof_ && c == '%') {
        p_ = end_;  // competition terminator: hard end of input
        return false;
      }
    }
    bol_ = false;
    return true;
  }
  return false;
}

std::string_view FastCursor::pendingToken() const {
  const char* q = p_;
  while (q != end_ && !endsToken(*q)) ++q;
  return {p_, static_cast<std::size_t>(q - p_)};
}

void FastCursor::fail(const std::string& msg) const {
  throw DimacsError(msg + " (line " + std::to_string(line_) + ")");
}

std::int64_t FastCursor::readInt(const char* what) {
  if (!skipToToken()) {
    fail(std::string("expected ") + what + ", got end of input");
  }
  const char* start = p_;
  bool neg = false;
  if (*p_ == '-' || *p_ == '+') {
    neg = (*p_ == '-');
    ++p_;
  }
  const char* digits = p_;
  std::uint64_t v = 0;
  while (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(*p_ - '0');
    ++p_;
  }
  const std::ptrdiff_t ndigits = p_ - digits;
  if (ndigits == 0 || (p_ != end_ && !endsToken(*p_))) {
    p_ = start;
    fail(std::string("expected ") + what + ", got '" +
         std::string(pendingToken()) + "'");
  }
  // <= 19 digits cannot wrap uint64; past that (or past int64's range)
  // the value is out of range for any weight/literal we accept.
  const std::uint64_t lim =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) +
      (neg ? 1u : 0u);
  if (ndigits > 19 || v > lim) {
    p_ = start;
    fail(std::string("integer overflow in ") + what + ": '" +
         std::string(pendingToken()) + "'");
  }
  return neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
}

std::string_view FastCursor::readWord() {
  if (!skipToToken()) return {};
  const std::string_view tok = pendingToken();
  p_ += tok.size();
  return tok;
}

std::int64_t FastCursor::readIntQuick(const char* what) {
  const char* p = p_;
  const char* const end = end_;
  int line = line_;
  bool bol = bol_;
  for (;;) {
    if (p == end) break;  // fall back
    const char c = *p;
    if (isBlank(c)) {
      ++p;
      continue;
    }
    if (c == '\n') {
      ++p;
      ++line;
      bol = true;
      continue;
    }
    if (bol && (c == comment_ || (percent_eof_ && c == '%'))) break;
    const bool neg = (c == '-');
    const char* q = p;
    if (neg || c == '+') ++q;
    std::uint32_t v = 0;
    const char* const digits = q;
    while (q != end && static_cast<unsigned char>(*q - '0') <= 9) {
      v = v * 10u + static_cast<std::uint32_t>(*q - '0');
      ++q;
    }
    const std::ptrdiff_t nd = q - digits;
    if (nd == 0 || nd > 9 || (q != end && !endsToken(*q))) break;
    p_ = q;
    line_ = line;
    bol_ = false;
    return neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
  }
  // Slow path: members were not touched, so readInt redoes the skip and
  // produces its usual value or diagnostic.
  return readInt(what);
}

void FastCursor::readClauseLits(int maxVar, Clause& out) {
  out.clear();
  const char* p = p_;
  const char* const end = end_;
  int line = line_;
  bool bol = bol_;
  const auto sync = [&] {
    p_ = p;
    line_ = line;
    bol_ = bol;
  };
  for (;;) {
    // Inlined skipToToken over the local cursor.
    for (;;) {
      if (p == end) {
        sync();
        static_cast<void>(readInt("literal"));  // throws the exact error
      }
      const char c = *p;
      if (isBlank(c)) {
        ++p;
        continue;
      }
      if (c == '\n') {
        ++p;
        ++line;
        bol = true;
        continue;
      }
      if (bol) {
        if (c == comment_) {
          while (p != end && *p != '\n') ++p;
          continue;
        }
        if (percent_eof_ && c == '%') {
          sync();
          static_cast<void>(readInt("literal"));  // '%' => end of input
        }
      }
      bol = false;
      break;
    }
    const char* const tokStart = p;
    const bool neg = (*p == '-');
    if (neg || *p == '+') ++p;
    std::uint32_t v = 0;
    const char* const digits = p;
    while (p != end && static_cast<unsigned char>(*p - '0') <= 9) {
      v = v * 10u + static_cast<std::uint32_t>(*p - '0');
      ++p;
    }
    const std::ptrdiff_t nd = p - digits;
    if (nd == 0 || nd > 9 || (p != end && !endsToken(*p))) {
      // Slow path: anything that could overflow or is not a clean
      // integer token goes back through readInt for its diagnostics.
      p = tokStart;
      sync();
      const std::int64_t sv = readInt("literal");
      if (sv == 0) return;
      if (sv > maxVar || sv < -maxVar) {
        fail("literal " + std::to_string(sv) + " out of declared range " +
             std::to_string(maxVar));
      }
      out.push_back(Lit::fromDimacs(static_cast<std::int32_t>(sv)));
      p = p_;
      line = line_;
      bol = bol_;
      continue;
    }
    if (v == 0) {
      sync();
      return;
    }
    if (v > static_cast<std::uint32_t>(maxVar)) {
      sync();
      const std::int64_t sv = neg ? -static_cast<std::int64_t>(v) : v;
      fail("literal " + std::to_string(sv) + " out of declared range " +
           std::to_string(maxVar));
    }
    const auto sv = static_cast<std::int32_t>(v);
    out.push_back(Lit::fromDimacs(neg ? -sv : sv));
  }
}

void FastCursor::expectEndOfLine(const char* where) {
  while (p_ != end_ && isBlank(*p_)) ++p_;
  if (p_ == end_ || *p_ == '\n') return;
  fail(std::string("trailing tokens in ") + where + ": '" +
       std::string(pendingToken()) + "'");
}

// ---- DIMACS CNF / WCNF front ends ----------------------------------------

namespace {

struct FpHeader {
  bool wcnf = false;
  int vars = 0;
  std::int64_t clauses = 0;
  std::optional<Weight> top;  // wcnf only
};

/// True iff another token sits on the current line (blanks skipped).
bool moreOnLine(const char* p, const char* end) {
  while (p != end && isBlank(*p)) ++p;
  return p != end && *p != '\n';
}

/// Parses the one-line `p cnf|wcnf <vars> <clauses> [top]` header.
FpHeader readFpHeader(FastCursor& cur) {
  if (!cur.skipToToken()) cur.fail("missing 'p' header");
  const int headerLine = cur.line();
  const std::string_view p = cur.readWord();
  if (p != "p") {
    cur.fail("expected 'p' header, got: '" + std::string(p) + "'");
  }
  FpHeader h;
  const std::string_view fmt = cur.readWord();
  if (fmt == "wcnf") {
    h.wcnf = true;
  } else if (fmt != "cnf") {
    cur.fail("unknown format '" + std::string(fmt) + "'");
  }
  const std::int64_t vars = cur.readInt("variable count");
  h.clauses = cur.readInt("clause count");
  if (vars < 0 || h.clauses < 0) {
    cur.fail("negative counts in 'p' header");
  }
  if (vars > std::numeric_limits<std::int32_t>::max() / 2) {
    cur.fail("variable count " + std::to_string(vars) + " too large");
  }
  h.vars = static_cast<int>(vars);
  if (h.wcnf && cur.line() == headerLine && cur.peekMoreOnLine()) {
    h.top = cur.readInt("top weight");
  }
  if (cur.line() != headerLine) cur.fail("malformed 'p' header");
  cur.expectEndOfLine("'p' header");
  return h;
}

/// Clause capacity hint: trust the header, capped by what the input
/// could physically contain (>= 2 bytes per clause), so a lying header
/// cannot force a huge allocation.
std::int64_t clauseReserveHint(std::int64_t declared, std::size_t bytes) {
  return std::min<std::int64_t>(declared,
                                static_cast<std::int64_t>(bytes / 2) + 16);
}

/// Headerless 2022 WCNF: `h <lits> 0` hard lines, `<w> <lits> 0` softs.
WcnfFormula parseWcnf2022(FastCursor& cur) {
  constexpr std::int64_t kMaxVar = std::numeric_limits<std::int32_t>::max() / 2;
  WcnfFormula out;
  Clause c;
  while (cur.skipToToken()) {
    bool hard = false;
    Weight w = 1;
    if (cur.peek() == 'h') {
      const std::string_view tok = cur.readWord();
      if (tok != "h") {
        cur.fail("expected clause weight, got '" + std::string(tok) + "'");
      }
      hard = true;
    } else {
      w = cur.readIntQuick("clause weight");
      if (w <= 0) cur.fail("non-positive clause weight");
    }
    c.clear();
    if (!cur.skipToToken()) cur.fail("weight without clause body");
    for (;;) {
      const std::int64_t v = cur.readInt("literal");
      if (v == 0) break;
      if (v > kMaxVar || v < -kMaxVar) {
        cur.fail("literal " + std::to_string(v) + " too large");
      }
      c.push_back(Lit::fromDimacs(static_cast<std::int32_t>(v)));
    }
    if (hard) {
      out.addHard(c);
    } else {
      out.addSoft(c, w);
    }
  }
  return out;
}

}  // namespace

bool FastCursor::peekMoreOnLine() const { return moreOnLine(p_, end_); }

bool fastLoadDimacsCnfInto(const InputBuffer& buf, Solver& solver) {
  FastCursor cur(buf);
  const FpHeader h = readFpHeader(cur);
  if (h.wcnf) throw DimacsError("expected cnf, got wcnf");
  while (solver.numVars() < h.vars) static_cast<void>(solver.newVar());
  {
    const Solver::BulkLoadGuard bulk(solver, solver.options().bulk_load);
    Clause c;
    while (cur.skipToToken()) {
      cur.readClauseLits(h.vars, c);
      if (!solver.addClause(c)) break;  // root-level UNSAT: stop early
    }
  }
  return solver.okay();
}

CnfFormula fastParseDimacsCnf(const InputBuffer& buf) {
  FastCursor cur(buf);
  const FpHeader h = readFpHeader(cur);
  if (h.wcnf) throw DimacsError("expected cnf, got wcnf");
  CnfFormula cnf(h.vars);
  cnf.reserveClauses(clauseReserveHint(h.clauses, buf.size()));
  Clause c;
  while (cur.skipToToken()) {
    cur.readClauseLits(h.vars, c);
    cnf.addClause(Clause(c));
  }
  return cnf;
}

WcnfFormula fastParseDimacsWcnf(const InputBuffer& buf) {
  FastCursor probe(buf);
  if (!probe.skipToToken()) throw DimacsError("missing 'p' header");
  if (probe.peek() != 'p') {
    FastCursor cur(buf);
    return parseWcnf2022(cur);
  }
  FastCursor cur(buf);
  const FpHeader h = readFpHeader(cur);
  WcnfFormula out(h.vars);
  Clause c;
  if (!h.wcnf) {
    // A plain CNF read as WCNF lifts to an all-soft instance.
    while (cur.skipToToken()) {
      cur.readClauseLits(h.vars, c);
      out.addSoft(c, 1);
    }
    return out;
  }
  while (cur.skipToToken()) {
    const Weight w = cur.readIntQuick("clause weight");
    if (w <= 0) cur.fail("non-positive clause weight");
    if (!cur.skipToToken()) cur.fail("weight without clause body");
    cur.readClauseLits(h.vars, c);
    if (h.top && w >= *h.top) {
      out.addHard(c);
    } else {
      out.addSoft(c, w);
    }
  }
  return out;
}

}  // namespace msu
