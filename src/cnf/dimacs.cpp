#include "cnf/dimacs.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "cnf/fastparse.h"

namespace msu {
namespace {

/// Legacy tokenizing cursor over a DIMACS stream: skips comments and
/// blank lines. Kept (with its documented leading-'c' quirk) only to
/// back the *Legacy readers; the live path is fastparse.h.
class Tokens {
 public:
  explicit Tokens(std::istream& in) : in_(in) {}

  /// Next whitespace-separated token, skipping comment lines; empty string
  /// at end of input.
  std::string next() {
    std::string tok;
    while (in_ >> tok) {
      if (tok == "c" || tok.starts_with("c#") ||
          (tok.size() > 1 && tok[0] == 'c' && !isTokenNumericOrP(tok))) {
        std::string rest;
        std::getline(in_, rest);
        continue;
      }
      return tok;
    }
    return {};
  }

 private:
  static bool isTokenNumericOrP(const std::string& t) {
    // "c..." comment words vs. tokens like "cnf" inside the header are
    // disambiguated by the caller; here we only treat a leading 'c' token
    // as a comment when it cannot be the "cnf"/"wcnf" keyword.
    return t == "cnf" || t == "c";
  }

  std::istream& in_;
};

std::int64_t parseInt(const std::string& tok, const char* what) {
  try {
    std::size_t pos = 0;
    std::int64_t v = std::stoll(tok, &pos);
    if (pos != tok.size()) throw DimacsError("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw DimacsError(std::string("expected ") + what + ", got '" + tok + "'");
  }
}

struct Header {
  std::string format;  // "cnf" or "wcnf"
  int vars = 0;
  std::int64_t clauses = 0;
  std::optional<Weight> top;  // wcnf only
};

/// Reads lines until the `p` header; returns it. Skips comments.
Header readHeader(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank
    if (first == "c" || first[0] == 'c') continue;
    if (first != "p") throw DimacsError("expected 'p' header, got: " + line);
    Header h;
    std::string vars, clauses;
    if (!(ls >> h.format >> vars >> clauses)) {
      throw DimacsError("malformed 'p' header: " + line);
    }
    h.vars = static_cast<int>(parseInt(vars, "variable count"));
    h.clauses = parseInt(clauses, "clause count");
    if (h.vars < 0 || h.clauses < 0) {
      throw DimacsError("negative counts in 'p' header: " + line);
    }
    std::string top;
    if (ls >> top) h.top = parseInt(top, "top weight");
    if (h.format != "cnf" && h.format != "wcnf") {
      throw DimacsError("unknown format '" + h.format + "'");
    }
    return h;
  }
  throw DimacsError("missing 'p' header");
}

/// Reads literals up to the terminating 0 into `out`.
/// Returns false at clean end-of-input before any literal.
bool readClauseBody(Tokens& toks, int maxVar, Clause& out,
                    std::string firstTok = {}) {
  out.clear();
  bool sawAny = !firstTok.empty();
  std::string tok = firstTok.empty() ? toks.next() : std::move(firstTok);
  while (true) {
    if (tok.empty()) {
      if (!sawAny || out.empty()) return false;
      throw DimacsError("clause not terminated by 0");
    }
    std::int64_t v = parseInt(tok, "literal");
    if (v == 0) return true;
    if (v > maxVar || v < -maxVar) {
      throw DimacsError("literal " + std::to_string(v) +
                        " out of declared range " + std::to_string(maxVar));
    }
    out.push_back(Lit::fromDimacs(static_cast<std::int32_t>(v)));
    sawAny = true;
    tok = toks.next();
  }
}

}  // namespace

CnfFormula readDimacsCnfLegacy(std::istream& in) {
  Header h = readHeader(in);
  if (h.format != "cnf") throw DimacsError("expected cnf, got " + h.format);
  CnfFormula cnf(h.vars);
  Tokens toks(in);
  Clause c;
  while (true) {
    std::string tok = toks.next();
    if (tok.empty()) break;
    if (!readClauseBody(toks, h.vars, c, tok)) break;
    cnf.addClause(Clause(c));
  }
  return cnf;
}

WcnfFormula readDimacsWcnfLegacy(std::istream& in) {
  Header h = readHeader(in);
  Tokens toks(in);
  Clause c;
  if (h.format == "cnf") {
    WcnfFormula out(h.vars);
    while (true) {
      std::string tok = toks.next();
      if (tok.empty()) break;
      if (!readClauseBody(toks, h.vars, c, tok)) break;
      out.addSoft(c, 1);
    }
    return out;
  }
  // wcnf: weight precedes each clause.
  WcnfFormula out(h.vars);
  while (true) {
    std::string tok = toks.next();
    if (tok.empty()) break;
    Weight w = parseInt(tok, "clause weight");
    if (w <= 0) throw DimacsError("non-positive clause weight");
    if (!readClauseBody(toks, h.vars, c)) {
      throw DimacsError("weight without clause body");
    }
    if (h.top && w >= *h.top) {
      out.addHard(c);
    } else {
      out.addSoft(c, w);
    }
  }
  return out;
}

CnfFormula readDimacsCnf(std::istream& in) {
  return fastParseDimacsCnf(InputBuffer::fromStream(in));
}

WcnfFormula readDimacsWcnf(std::istream& in) {
  return fastParseDimacsWcnf(InputBuffer::fromStream(in));
}

CnfFormula parseDimacsCnf(const std::string& text) {
  return fastParseDimacsCnf(InputBuffer::borrow(text.data(), text.size()));
}

WcnfFormula parseDimacsWcnf(const std::string& text) {
  return fastParseDimacsWcnf(InputBuffer::borrow(text.data(), text.size()));
}

CnfFormula loadDimacsCnf(const std::string& path) {
  return fastParseDimacsCnf(InputBuffer::fromFile(path));
}

WcnfFormula loadDimacsWcnf(const std::string& path) {
  return fastParseDimacsWcnf(InputBuffer::fromFile(path));
}

void writeDimacsCnf(std::ostream& out, const CnfFormula& cnf) {
  out << "p cnf " << cnf.numVars() << ' ' << cnf.numClauses() << '\n';
  for (const Clause& c : cnf.clauses()) {
    for (Lit p : c) out << p.toDimacs() << ' ';
    out << "0\n";
  }
}

void writeDimacsWcnf(std::ostream& out, const WcnfFormula& wcnf) {
  const Weight top = wcnf.totalSoftWeight() + 1;
  out << "p wcnf " << wcnf.numVars() << ' '
      << (wcnf.numHard() + wcnf.numSoft()) << ' ' << top << '\n';
  for (const Clause& c : wcnf.hard()) {
    out << top << ' ';
    for (Lit p : c) out << p.toDimacs() << ' ';
    out << "0\n";
  }
  for (const SoftClause& s : wcnf.soft()) {
    out << s.weight << ' ';
    for (Lit p : s.lits) out << p.toDimacs() << ' ';
    out << "0\n";
  }
}

std::string toDimacsString(const CnfFormula& cnf) {
  std::ostringstream os;
  writeDimacsCnf(os, cnf);
  return os.str();
}

std::string toDimacsString(const WcnfFormula& wcnf) {
  std::ostringstream os;
  writeDimacsWcnf(os, wcnf);
  return os.str();
}

}  // namespace msu
