/// \file formula.h
/// \brief Plain CNF formulas: a clause container plus light structural
///        utilities (normalization, evaluation, statistics).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cnf/literal.h"

namespace msu {

/// A clause is an ordered list of literals. Empty clauses are permitted
/// (they denote falsum) so parsers and transformations can represent
/// degenerate inputs faithfully.
using Clause = std::vector<Lit>;

/// A complete truth assignment: `assignment[v]` is the value of variable v.
using Assignment = std::vector<lbool>;

/// A CNF formula over variables `0 .. numVars()-1`.
///
/// Invariant: every literal in every clause refers to a variable strictly
/// below `numVars()`. `addClause` grows the variable count on demand, so
/// the invariant always holds.
class CnfFormula {
 public:
  CnfFormula() = default;

  /// Creates a formula with `numVars` variables and no clauses.
  explicit CnfFormula(int numVars) : num_vars_(numVars) {}

  /// Number of variables (0-based ids `0 .. numVars()-1`).
  [[nodiscard]] int numVars() const { return num_vars_; }

  /// Number of clauses.
  [[nodiscard]] int numClauses() const {
    return static_cast<int>(clauses_.size());
  }

  /// Total number of literal occurrences.
  [[nodiscard]] std::int64_t numLiterals() const;

  /// Reserves a fresh variable and returns its id.
  Var newVar() { return num_vars_++; }

  /// Ensures at least `n` variables exist.
  void ensureVars(int n) {
    if (n > num_vars_) num_vars_ = n;
  }

  /// Capacity hint for bulk construction (parser front ends); clamps
  /// negatives to zero and never shrinks.
  void reserveClauses(std::int64_t n) {
    if (n > static_cast<std::int64_t>(clauses_.capacity())) {
      clauses_.reserve(static_cast<std::size_t>(n));
    }
  }

  /// Heap bytes held by the clause storage (capacities, not sizes) —
  /// the formula's contribution to an end-to-end memory budget.
  [[nodiscard]] std::int64_t memBytesEstimate() const;

  /// Appends a clause (copying); grows the variable universe as needed.
  void addClause(std::span<const Lit> lits);

  /// Appends a clause (moving); grows the variable universe as needed.
  void addClause(Clause&& lits);

  /// Initializer-list convenience for tests and examples.
  void addClause(std::initializer_list<Lit> lits) {
    addClause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// The clause at index `i`.
  [[nodiscard]] const Clause& clause(int i) const { return clauses_[i]; }

  /// All clauses.
  [[nodiscard]] const std::vector<Clause>& clauses() const { return clauses_; }

  /// True iff the assignment satisfies clause `i`.
  [[nodiscard]] bool clauseSatisfied(int i, const Assignment& a) const;

  /// Number of clauses satisfied by a complete assignment.
  [[nodiscard]] int numSatisfied(const Assignment& a) const;

  /// True iff the assignment satisfies every clause.
  [[nodiscard]] bool satisfies(const Assignment& a) const {
    return numSatisfied(a) == numClauses();
  }

  /// Returns a copy with tautological clauses removed, duplicate literals
  /// collapsed, literals sorted, and duplicate clauses removed. Clause
  /// order of first occurrence is preserved.
  [[nodiscard]] CnfFormula normalized() const;

  /// One-line summary, e.g. "CNF(vars=10, clauses=42)".
  [[nodiscard]] std::string summary() const;

 private:
  int num_vars_ = 0;
  std::vector<Clause> clauses_;
};

/// True iff `lits` contains both a literal and its complement.
[[nodiscard]] bool isTautology(std::span<const Lit> lits);

/// Sorted, duplicate-free copy of `lits` (tautologies are *not* detected).
[[nodiscard]] Clause normalizedClause(std::span<const Lit> lits);

}  // namespace msu
