/// \file job.h
/// \brief Job-level types of the SolveService: per-job resource limits,
///        lifecycle states, and the structured outcome a client gets
///        back. The service itself lives in svc/service.h.

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/maxsat.h"
#include "sat/budget.h"
#include "sat/fault.h"

namespace msu {

/// Opaque handle to a submitted job. Never reused within one service.
using JobId = std::uint64_t;

/// Sentinel returned by a rejected submit().
inline constexpr JobId kJobIdUndef = 0;

/// Per-job resource limits, the service-level generalization of the
/// solver's cooperative Budget. Every limit is optional; an empty
/// JobLimits runs the job unbounded (modulo the service-wide default
/// deadline, see SolveServiceOptions::default_max_job_seconds).
struct JobLimits {
  /// Wall-clock deadline in seconds, measured from the moment the job
  /// *starts running* (queue time does not count against it). Enforced
  /// twice: cooperatively by the solver's own budget polls, and by the
  /// service watchdog which fires the job's interrupt flag if the
  /// worker blows past the deadline anyway.
  std::optional<double> wall_seconds;

  /// Cumulative SAT-conflict cap across all oracle calls of the job.
  std::optional<std::int64_t> max_conflicts;

  /// Cooperative memory cap in bytes (solver arena + watch pools +
  /// learnt DB + per-variable state, see SolverStats::mem_bytes). The
  /// job aborts with AbortReason::kMemory instead of OOMing the
  /// process.
  std::optional<std::int64_t> max_memory_bytes;

  /// Scheduling priority: higher runs first; ties break FIFO by
  /// submission order.
  int priority = 0;

  /// Engine override for this job (harness/factory.h names); empty =
  /// the service-wide SolveServiceOptions::engine. Lets one service
  /// mix modes per request — e.g. "portfolio4" to race a
  /// latency-critical job across cores, "cubes4" to shard one hard
  /// instance, the default sequential engine for everything else.
  /// Unknown names are rejected at submit() (kBadEngine).
  std::optional<std::string> engine;

  /// Optional fault injector wired into the job's solver (tests only).
  /// Non-owning; must outlive the job.
  FaultInjector* fault = nullptr;
};

/// Lifecycle of a job inside the service.
enum class JobState {
  kQueued,     ///< accepted, waiting for a worker
  kRunning,    ///< a worker is solving it
  kDone,       ///< finished (possibly aborted; see JobOutcome::abort)
  kCancelled,  ///< cancelled while still queued (never ran)
};

/// Short human-readable state name.
[[nodiscard]] constexpr const char* toString(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

/// Final outcome of a job. Degradation is graceful by construction:
/// an aborted MaxSAT job still carries the best incumbent bounds (and
/// model, when one was found) in `result` — `result.lowerBound` /
/// `result.upperBound` are always valid, exactly as for a direct
/// engine call that ran out of budget.
struct JobOutcome {
  MaxSatResult result;

  /// Structured cause when the job stopped early (kNone on a clean
  /// finish). First limit to trip wins; external cancellation and the
  /// watchdog record kCancelled/kDeadline respectively.
  AbortReason abort = AbortReason::kNone;

  /// Seconds spent waiting in the queue / solving.
  double queue_seconds = 0.0;
  double solve_seconds = 0.0;
};

/// Snapshot returned by SolveService::poll().
struct JobStatus {
  JobState state = JobState::kQueued;

  /// Abort reason recorded so far (may be set while still kRunning:
  /// e.g. the watchdog already fired but the solver has not unwound
  /// yet).
  AbortReason abort = AbortReason::kNone;

  /// Live anytime progress. For a kRunning job these are sampled from
  /// the job's ProgressSink (engines stream bound improvements and
  /// per-oracle-call deltas into it while solving); once kDone they
  /// come from the final MaxSatResult, which is at least as tight.
  /// Both bound sequences are monotone across repeated poll()s of one
  /// job — lower only rises, upper only falls — because the sink folds
  /// racing writers in monotonically (see obs/progress.h).
  Weight lowerBound = 0;
  /// Only meaningful when hasUpperBound (an incumbent model exists).
  Weight upperBound = 0;
  bool hasUpperBound = false;

  /// Work performed so far: CDCL conflicts, oracle solve() calls, and
  /// the current solver memory estimate, summed over every oracle
  /// session the job runs (portfolio/cube engines have several).
  std::int64_t conflicts = 0;
  std::int64_t satCalls = 0;
  std::int64_t memBytes = 0;
};

}  // namespace msu
