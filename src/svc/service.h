/// \file service.h
/// \brief SolveService: a hardened solver-as-a-service front end that
///        multiplexes concurrent MaxSAT jobs over a fixed worker pool.
///
/// ## Architecture
///
/// ```
///   submit()  ──►  priority queue  ──►  worker 0 ┐
///   cancel()        (mutex-guarded)     worker 1 ├─►  makeSolver(engine)
///   poll()                              ...      ┘    one engine per job
///   await()   ◄──  done_cv_  ◄──  outcomes            │
///                                                     │ cooperative
///                  watchdog thread ───────────────────┘ Budget polls
/// ```
///
/// One `SolveService` owns `workers` threads, each running an ordinary
/// in-process MaxSAT engine (harness/factory.h) — no processes, no
/// signals. All robustness is *cooperative* and flows through the
/// existing Budget machinery:
///
///  * **Per-job limits** (`JobLimits`) are translated into a Budget
///    (deadline / conflict cap / memory cap) plus two shared slots the
///    Budget carries by pointer: the job's interrupt flag and its
///    abort-reason sink. Budget copies made inside the engine all share
///    those pointers (see budget.h's copy-semantics note), so one
///    signal reaches every oracle of the job.
///  * **Watchdog**: a single service thread scans running jobs every
///    `watchdog_period_s` and, when a job overstays its deadline (its
///    own, or the service-wide `default_max_job_seconds`), records
///    AbortReason::kDeadline and raises the interrupt flag. Because
///    Budget::timeExpired() folds the interrupt into every wall-clock
///    poll, the stuck worker unwinds at its next poll site — the
///    watchdog needs no thread cancellation and cannot corrupt state.
///  * **Graceful degradation**: a job that aborts still reports the
///    best incumbent bounds/model its engine had (MaxSatResult carries
///    them on Unknown by contract). When the queue is full, submit()
///    sheds load synchronously with SubmitStatus::kOverloaded instead
///    of buffering without bound.
///  * **Determinism**: a 1-worker service with no limits produces
///    bit-for-bit the result of calling the engine directly — the only
///    thing the service adds to the engine's options is an interrupt
///    flag that is never raised and a sink that is never written.
///
/// Fault injection (sat/fault.h) threads through JobLimits::fault into
/// the job's solver, so the stress suite (tests/service_test.cpp) can
/// deterministically force budget expiry, allocation failure, or a
/// spurious Unknown inside any chosen job.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cnf/wcnf.h"
#include "core/maxsat.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/job.h"

namespace msu {

/// Configuration of a SolveService.
struct SolveServiceOptions {
  /// Worker threads (each runs one job at a time).
  int workers = 1;

  /// Maximum number of *queued* (not yet running) jobs before submit()
  /// sheds load with kOverloaded.
  std::size_t max_queue_depth = 64;

  /// Service-wide memory ceiling in bytes. When set, submit() estimates
  /// the incoming formula's footprint (WcnfFormula::memBytesEstimate)
  /// and sheds with kOverloaded whenever the aggregate — running jobs'
  /// live solver accounting (at least their formula estimate), queued
  /// jobs' formula estimates, and the incoming job — would exceed the
  /// ceiling. Complements per-job JobLimits::max_memory_bytes: that cap
  /// aborts one oversized job with AbortReason::kMemory, this one
  /// refuses admission so the fleet never overcommits. Unset = no cap.
  std::optional<std::int64_t> max_service_mem_bytes;

  /// Engine name for every job (harness/factory.h names, e.g.
  /// "msu4-v2", "oll", "linear"). One engine instance is built per job.
  std::string engine = "msu4-v2";

  /// Base options handed to every engine. The budget inside is ignored
  /// — per-job limits come from JobLimits — and so is sat.fault.
  MaxSatOptions base;

  /// Watchdog scan period in seconds.
  double watchdog_period_s = 0.010;

  /// Service-wide ceiling on a single job's running time; enforced by
  /// the watchdog even for jobs submitted without a wall_seconds limit.
  /// Unset = no ceiling.
  std::optional<double> default_max_job_seconds;

  /// Optional execution tracer (non-owning; must outlive the service).
  /// When set, every job's solvers emit their spans into it and the
  /// service adds the job lifecycle: a "submit" instant, a "queue"
  /// span (submit→start), and a "run" span (start→finish), all keyed
  /// by job id. Null = no tracing.
  obs::Tracer* trace = nullptr;

  /// Optional metrics registry (non-owning; must outlive the service).
  /// When set, the service registers and maintains job counters
  /// (submitted/shed/completed/cancelled), queue-depth and running
  /// gauges, queue/solve latency histograms, the service-wide
  /// `msu_svc_mem_bytes` gauge aggregated across running jobs (the
  /// shedding input when max_service_mem_bytes is set), the process
  /// `msu_svc_peak_rss_bytes` high-water gauge, the
  /// per-oracle-call latency and drain-size histograms, and mirrors
  /// every completed job's SolverStats into `msu_solver_*_total`
  /// counters (harness/tables exportStatsToMetrics). Null = no metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

/// See the file comment. All public members are thread-safe; the
/// service joins its threads on destruction (cancelling whatever is
/// still queued or running).
class SolveService {
 public:
  /// Outcome of a submit() call.
  enum class SubmitStatus {
    kAccepted,    ///< queued; `id` is valid
    kOverloaded,  ///< queue full — load shed, job NOT accepted
    kShutdown,    ///< service is shutting down
    kBadEngine,   ///< JobLimits::engine is not a known engine name
  };

  struct Submission {
    SubmitStatus status = SubmitStatus::kShutdown;
    JobId id = kJobIdUndef;
  };

  /// Monotone counters for tests and the bench harness.
  struct Counters {
    std::int64_t submitted = 0;  ///< accepted jobs
    std::int64_t shed = 0;       ///< kOverloaded rejections
    std::int64_t completed = 0;  ///< jobs that ran to an outcome
    std::int64_t cancelled_queued = 0;  ///< cancelled before running
  };

  explicit SolveService(SolveServiceOptions opts);
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Submits a job. Sheds load (kOverloaded) when the queue is full.
  [[nodiscard]] Submission submit(WcnfFormula formula, JobLimits limits = {});

  /// Non-blocking status snapshot; nullopt for unknown ids.
  [[nodiscard]] std::optional<JobStatus> poll(JobId id) const;

  /// Cancels a job. Queued jobs are removed immediately (state
  /// kCancelled, they never run); running jobs get kCancelled recorded
  /// and their interrupt flag raised — the worker unwinds at the next
  /// budget poll and the job completes with abort == kCancelled.
  /// Returns false for unknown or already-finished jobs.
  bool cancel(JobId id);

  /// Blocks until the job reaches kDone or kCancelled and returns its
  /// outcome. Unknown ids return a default outcome with abort kFault.
  [[nodiscard]] JobOutcome await(JobId id);

  /// Jobs currently waiting for a worker.
  [[nodiscard]] std::size_t queueDepth() const;

  /// Lifetime counters (consistent snapshot).
  [[nodiscard]] Counters counters() const;

  /// Stops accepting work, cancels queued jobs, interrupts running
  /// ones, and joins all threads. Idempotent; also run by ~SolveService.
  void shutdown();

 private:
  struct Job;

  /// Cached metric handles (registry lookups take a mutex; the handles
  /// themselves are stable forever). Present iff opts_.metrics is set.
  struct ServiceMetrics {
    obs::Counter* submitted;
    obs::Counter* shed;
    obs::Counter* completed;
    obs::Counter* cancelled_queued;
    obs::Gauge* queue_depth;
    obs::Gauge* running;
    obs::Gauge* mem_bytes;
    obs::Gauge* peak_rss;
    obs::Histogram* queue_us;
    obs::Histogram* solve_us;
  };

  void workerLoop();
  void watchdogLoop();
  void runJob(const std::shared_ptr<Job>& job);

  /// Recomputes the service-wide memory gauge from the running jobs'
  /// progress sinks. Pre: lock held. No-op without a registry.
  void updateMemGauge();

  /// Pops the best queued job (priority desc, submission order asc).
  /// Pre: lock held, queue_ non-empty.
  std::shared_ptr<Job> popBest();

  SolveServiceOptions opts_;
  std::optional<ServiceMetrics> metrics_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;     ///< workers wait here
  std::condition_variable done_cv_;      ///< await() waits here
  std::condition_variable watchdog_cv_;  ///< watchdog period / shutdown

  bool stopping_ = false;
  JobId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs_;
  std::vector<std::shared_ptr<Job>> running_;
  Counters counters_;

  std::vector<std::thread> threads_;
  std::thread watchdog_;
};

}  // namespace msu
