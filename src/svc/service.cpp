/// \file service.cpp
/// \brief SolveService implementation. See service.h for the
///        architecture; the invariants worth knowing here:
///
///  * `mu_` guards every mutable field; workers drop it while solving.
///  * A Job's interrupt/abort slots are owned by the Job object, which
///    outlives the solve because the worker holds a shared_ptr — the
///    non-owning pointers handed to Budget are therefore always valid.
///  * External cancellers (cancel(), watchdog, shutdown) record the
///    abort reason BEFORE raising the interrupt flag, so the solver's
///    poll — which returns early on interruption without noting a
///    reason — always finds the authoritative cause already in place.

#include "svc/service.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "harness/factory.h"

namespace msu {

namespace {

using Clock = Budget::Clock;

double secondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

struct SolveService::Job {
  JobId id = kJobIdUndef;
  std::uint64_t seq = 0;
  WcnfFormula formula;
  JobLimits limits;

  JobState state = JobState::kQueued;
  std::atomic<bool> interrupt{false};
  std::atomic<int> abort{static_cast<int>(AbortReason::kNone)};

  /// Absolute running-time deadline the watchdog enforces (per-job
  /// wall_seconds and/or the service default, whichever is sooner).
  /// Set when the job starts running.
  std::optional<Clock::time_point> watchdog_deadline;

  Clock::time_point submit_time;
  Clock::time_point start_time;

  JobOutcome outcome;  ///< valid once state is kDone / kCancelled

  [[nodiscard]] AbortReason abortReason() const {
    return static_cast<AbortReason>(abort.load(std::memory_order_relaxed));
  }

  /// Records `r` (first wins) and raises the interrupt flag — the
  /// external-canceller protocol (reason strictly before flag).
  void abortFromOutside(AbortReason r) {
    int expected = static_cast<int>(AbortReason::kNone);
    abort.compare_exchange_strong(expected, static_cast<int>(r),
                                  std::memory_order_relaxed);
    interrupt.store(true, std::memory_order_relaxed);
  }
};

SolveService::SolveService(SolveServiceOptions opts) : opts_(std::move(opts)) {
  if (opts_.workers < 1) opts_.workers = 1;
  // Fail fast on unknown engine names: building one engine up front is
  // cheap and turns a per-job nullptr surprise into a construction-time
  // error.
  assert(makeSolver(opts_.engine, MaxSatOptions{}) != nullptr &&
         "SolveServiceOptions::engine is not a known engine name");
  threads_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
  watchdog_ = std::thread([this] { watchdogLoop(); });
}

SolveService::~SolveService() { shutdown(); }

SolveService::Submission SolveService::submit(WcnfFormula formula,
                                              JobLimits limits) {
  // Per-job engine overrides are validated here, synchronously, so a
  // typo comes back as kBadEngine instead of a job that can never run.
  // (The probe build is cheap: engines do no work until solve().)
  if (limits.engine &&
      makeSolver(*limits.engine, MaxSatOptions{}) == nullptr) {
    return {SubmitStatus::kBadEngine, kJobIdUndef};
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return {SubmitStatus::kShutdown, kJobIdUndef};
  if (queue_.size() >= opts_.max_queue_depth) {
    ++counters_.shed;
    return {SubmitStatus::kOverloaded, kJobIdUndef};
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->seq = next_seq_++;
  job->formula = std::move(formula);
  job->limits = limits;
  job->submit_time = Clock::now();
  jobs_.emplace(job->id, job);
  queue_.push_back(job);
  ++counters_.submitted;
  queue_cv_.notify_one();
  return {SubmitStatus::kAccepted, job->id};
}

std::optional<JobStatus> SolveService::poll(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return JobStatus{it->second->state, it->second->abortReason()};
}

bool SolveService::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const std::shared_ptr<Job>& job = it->second;
  switch (job->state) {
    case JobState::kQueued: {
      queue_.erase(std::find(queue_.begin(), queue_.end(), job));
      job->state = JobState::kCancelled;
      job->abortFromOutside(AbortReason::kCancelled);
      job->outcome.abort = AbortReason::kCancelled;
      job->outcome.queue_seconds =
          secondsBetween(job->submit_time, Clock::now());
      ++counters_.cancelled_queued;
      done_cv_.notify_all();
      return true;
    }
    case JobState::kRunning:
      job->abortFromOutside(AbortReason::kCancelled);
      return true;
    case JobState::kDone:
    case JobState::kCancelled:
      return false;
  }
  return false;
}

JobOutcome SolveService::await(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    JobOutcome unknown;
    unknown.abort = AbortReason::kFault;
    return unknown;
  }
  const std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lock, [&job] {
    return job->state == JobState::kDone || job->state == JobState::kCancelled;
  });
  return job->outcome;
}

std::size_t SolveService::queueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

SolveService::Counters SolveService::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void SolveService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && threads_.empty()) return;  // already shut down
    stopping_ = true;
    // Queued jobs never run; running jobs are interrupted and complete
    // with kCancelled through the normal worker path.
    for (const std::shared_ptr<Job>& job : queue_) {
      job->state = JobState::kCancelled;
      job->abortFromOutside(AbortReason::kCancelled);
      job->outcome.abort = AbortReason::kCancelled;
      job->outcome.queue_seconds =
          secondsBetween(job->submit_time, Clock::now());
      ++counters_.cancelled_queued;
    }
    queue_.clear();
    for (const std::shared_ptr<Job>& job : running_) {
      job->abortFromOutside(AbortReason::kCancelled);
    }
    queue_cv_.notify_all();
    watchdog_cv_.notify_all();
    done_cv_.notify_all();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (watchdog_.joinable()) watchdog_.join();
}

std::shared_ptr<SolveService::Job> SolveService::popBest() {
  auto best = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    const bool higher =
        (*it)->limits.priority > (*best)->limits.priority ||
        ((*it)->limits.priority == (*best)->limits.priority &&
         (*it)->seq < (*best)->seq);
    if (higher) best = it;
  }
  std::shared_ptr<Job> job = *best;
  queue_.erase(best);
  return job;
}

void SolveService::workerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    std::shared_ptr<Job> job = popBest();
    job->state = JobState::kRunning;
    job->start_time = Clock::now();
    if (job->limits.wall_seconds || opts_.default_max_job_seconds) {
      double limit = job->limits.wall_seconds
                         ? *job->limits.wall_seconds
                         : *opts_.default_max_job_seconds;
      if (job->limits.wall_seconds && opts_.default_max_job_seconds) {
        limit = std::min(limit, *opts_.default_max_job_seconds);
      }
      job->watchdog_deadline =
          job->start_time + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(limit));
    }
    running_.push_back(job);

    lock.unlock();
    runJob(job);
    lock.lock();

    running_.erase(std::find(running_.begin(), running_.end(), job));
    job->outcome.abort = job->abortReason();
    job->outcome.queue_seconds =
        secondsBetween(job->submit_time, job->start_time);
    job->outcome.solve_seconds =
        secondsBetween(job->start_time, Clock::now());
    job->state = JobState::kDone;
    ++counters_.completed;
    done_cv_.notify_all();
  }
}

void SolveService::runJob(const std::shared_ptr<Job>& job) {
  // Translate JobLimits into the engine's cooperative Budget. The
  // interrupt flag and abort sink live in the Job (which we keep alive
  // by shared_ptr), so every Budget copy the engine makes stays wired
  // to this job.
  MaxSatOptions opts = opts_.base;
  opts.budget = Budget{};
  if (job->limits.wall_seconds) {
    opts.budget.setWallClock(*job->limits.wall_seconds);
  }
  if (job->limits.max_conflicts) {
    opts.budget.setMaxConflicts(*job->limits.max_conflicts);
  }
  if (job->limits.max_memory_bytes) {
    opts.budget.setMaxMemory(*job->limits.max_memory_bytes);
  }
  opts.budget.setInterrupt(&job->interrupt);
  opts.budget.setAbortSink(&job->abort);
  opts.sat.fault = job->limits.fault;

  // A per-job engine override (validated at submit()) wins over the
  // service-wide default.
  const std::string& engineName =
      job->limits.engine ? *job->limits.engine : opts_.engine;
  std::unique_ptr<MaxSatSolver> engine = makeSolver(engineName, opts);
  assert(engine != nullptr);
  if (engine == nullptr) {  // release-build guard for unknown names
    opts.budget.noteAbort(AbortReason::kFault);
    return;
  }
  job->outcome.result = engine->solve(job->formula);
}

void SolveService::watchdogLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(
        lock, std::chrono::duration<double>(opts_.watchdog_period_s),
        [this] { return stopping_; });
    if (stopping_) return;
    const Clock::time_point now = Clock::now();
    for (const std::shared_ptr<Job>& job : running_) {
      if (job->watchdog_deadline && now >= *job->watchdog_deadline &&
          !job->interrupt.load(std::memory_order_relaxed)) {
        // Reason before flag, like every external canceller.
        job->abortFromOutside(AbortReason::kDeadline);
      }
    }
  }
}

}  // namespace msu
