/// \file service.cpp
/// \brief SolveService implementation. See service.h for the
///        architecture; the invariants worth knowing here:
///
///  * `mu_` guards every mutable field; workers drop it while solving.
///  * A Job's interrupt/abort slots are owned by the Job object, which
///    outlives the solve because the worker holds a shared_ptr — the
///    non-owning pointers handed to Budget are therefore always valid.
///  * External cancellers (cancel(), watchdog, shutdown) record the
///    abort reason BEFORE raising the interrupt flag, so the solver's
///    poll — which returns early on interruption without noting a
///    reason — always finds the authoritative cause already in place.

#include "svc/service.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "harness/factory.h"
#include "harness/tables.h"
#include "obs/progress.h"

namespace msu {

namespace {

using Clock = Budget::Clock;

double secondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

struct SolveService::Job {
  JobId id = kJobIdUndef;
  std::uint64_t seq = 0;
  WcnfFormula formula;
  JobLimits limits;

  /// Formula-storage estimate (bytes), computed at submit(); the
  /// admission-control floor for this job's memory while queued or
  /// running, and the solver's Options::external_mem_bytes charge.
  std::int64_t formula_mem = 0;

  JobState state = JobState::kQueued;
  std::atomic<bool> interrupt{false};
  std::atomic<int> abort{static_cast<int>(AbortReason::kNone)};

  /// Absolute running-time deadline the watchdog enforces (per-job
  /// wall_seconds and/or the service default, whichever is sooner).
  /// Set when the job starts running.
  std::optional<Clock::time_point> watchdog_deadline;

  Clock::time_point submit_time;
  Clock::time_point start_time;

  /// Live anytime progress: engines stream into it while the job runs,
  /// poll() reads it without the lock's help (all-atomic).
  obs::ProgressSink progress;

  JobOutcome outcome;  ///< valid once state is kDone / kCancelled

  [[nodiscard]] AbortReason abortReason() const {
    return static_cast<AbortReason>(abort.load(std::memory_order_relaxed));
  }

  /// Records `r` (first wins) and raises the interrupt flag — the
  /// external-canceller protocol (reason strictly before flag).
  void abortFromOutside(AbortReason r) {
    int expected = static_cast<int>(AbortReason::kNone);
    abort.compare_exchange_strong(expected, static_cast<int>(r),
                                  std::memory_order_relaxed);
    interrupt.store(true, std::memory_order_relaxed);
  }
};

SolveService::SolveService(SolveServiceOptions opts) : opts_(std::move(opts)) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *opts_.metrics;
    metrics_ = ServiceMetrics{
        &reg.counter("msu_svc_jobs_submitted_total", "Jobs accepted"),
        &reg.counter("msu_svc_jobs_shed_total", "Jobs shed (queue full)"),
        &reg.counter("msu_svc_jobs_completed_total", "Jobs run to outcome"),
        &reg.counter("msu_svc_jobs_cancelled_queued_total",
                     "Jobs cancelled before running"),
        &reg.gauge("msu_svc_queue_depth", "Jobs waiting for a worker"),
        &reg.gauge("msu_svc_running_jobs", "Jobs currently solving"),
        &reg.gauge("msu_svc_mem_bytes",
                   "Solver memory across running jobs (bytes)"),
        &reg.gauge("msu_svc_peak_rss_bytes",
                   "Process peak resident set size (bytes)"),
        &reg.histogram("msu_svc_job_queue_us", "Job queue latency"),
        &reg.histogram("msu_svc_job_solve_us", "Job solve latency"),
    };
  }
  // Fail fast on unknown engine names: building one engine up front is
  // cheap and turns a per-job nullptr surprise into a construction-time
  // error.
  assert(makeSolver(opts_.engine, MaxSatOptions{}) != nullptr &&
         "SolveServiceOptions::engine is not a known engine name");
  threads_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
  watchdog_ = std::thread([this] { watchdogLoop(); });
}

SolveService::~SolveService() { shutdown(); }

SolveService::Submission SolveService::submit(WcnfFormula formula,
                                              JobLimits limits) {
  // Per-job engine overrides are validated here, synchronously, so a
  // typo comes back as kBadEngine instead of a job that can never run.
  // (The probe build is cheap: engines do no work until solve().)
  if (limits.engine &&
      makeSolver(*limits.engine, MaxSatOptions{}) == nullptr) {
    return {SubmitStatus::kBadEngine, kJobIdUndef};
  }
  // Estimated before taking the lock: the walk over the clause vectors
  // is O(clauses) and must not serialize other submitters.
  const std::int64_t incomingMem = formula.memBytesEstimate();
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return {SubmitStatus::kShutdown, kJobIdUndef};
  bool overloaded = queue_.size() >= opts_.max_queue_depth;
  if (!overloaded && opts_.max_service_mem_bytes) {
    // Admission control on aggregate memory: live accounting for
    // running jobs (floored at their formula estimate — the solver's
    // gauge lags until the load finishes), estimates for queued ones.
    std::int64_t aggregate = incomingMem;
    for (const std::shared_ptr<Job>& j : running_) {
      aggregate += std::max(
          j->progress.mem_bytes.load(std::memory_order_relaxed),
          j->formula_mem);
    }
    for (const std::shared_ptr<Job>& j : queue_) aggregate += j->formula_mem;
    overloaded = aggregate > *opts_.max_service_mem_bytes;
  }
  if (overloaded) {
    ++counters_.shed;
    if (metrics_) metrics_->shed->add(1);
    return {SubmitStatus::kOverloaded, kJobIdUndef};
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->seq = next_seq_++;
  job->formula = std::move(formula);
  job->limits = limits;
  job->formula_mem = incomingMem;
  job->submit_time = Clock::now();
  jobs_.emplace(job->id, job);
  queue_.push_back(job);
  ++counters_.submitted;
  if (metrics_) {
    metrics_->submitted->add(1);
    metrics_->queue_depth->set(static_cast<std::int64_t>(queue_.size()));
  }
  obs::traceInstant(opts_.trace, obs::TraceCat::kJob, "job-submit", "job",
                    static_cast<std::int64_t>(job->id));
  queue_cv_.notify_one();
  return {SubmitStatus::kAccepted, job->id};
}

std::optional<JobStatus> SolveService::poll(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const Job& job = *it->second;
  JobStatus st;
  st.state = job.state;
  st.abort = job.abortReason();
  if (job.state == JobState::kDone) {
    // The final result is authoritative (and at least as tight as the
    // last sink report — engines publish en route, finish with the
    // best).
    const MaxSatResult& r = job.outcome.result;
    st.lowerBound = r.lowerBound;
    st.upperBound = r.upperBound;
    st.hasUpperBound = true;
    st.conflicts = r.satStats.conflicts;
    st.satCalls = r.satCalls;
    st.memBytes = r.satStats.mem_bytes;
  } else {
    const obs::ProgressSink& p = job.progress;
    st.lowerBound = p.lower_bound.load(std::memory_order_relaxed);
    const std::int64_t up = p.upper_bound.load(std::memory_order_relaxed);
    st.hasUpperBound = up != obs::ProgressSink::kNoUpper;
    if (st.hasUpperBound) st.upperBound = up;
    st.conflicts = p.conflicts.load(std::memory_order_relaxed);
    st.satCalls = p.sat_calls.load(std::memory_order_relaxed);
    st.memBytes = p.mem_bytes.load(std::memory_order_relaxed);
  }
  return st;
}

bool SolveService::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const std::shared_ptr<Job>& job = it->second;
  switch (job->state) {
    case JobState::kQueued: {
      queue_.erase(std::find(queue_.begin(), queue_.end(), job));
      job->state = JobState::kCancelled;
      job->abortFromOutside(AbortReason::kCancelled);
      job->outcome.abort = AbortReason::kCancelled;
      job->outcome.queue_seconds =
          secondsBetween(job->submit_time, Clock::now());
      ++counters_.cancelled_queued;
      if (metrics_) {
        metrics_->cancelled_queued->add(1);
        metrics_->queue_depth->set(static_cast<std::int64_t>(queue_.size()));
      }
      obs::traceInstant(opts_.trace, obs::TraceCat::kJob, "job-cancel", "job",
                        static_cast<std::int64_t>(id));
      done_cv_.notify_all();
      return true;
    }
    case JobState::kRunning:
      job->abortFromOutside(AbortReason::kCancelled);
      obs::traceInstant(opts_.trace, obs::TraceCat::kJob, "job-cancel", "job",
                        static_cast<std::int64_t>(id));
      return true;
    case JobState::kDone:
    case JobState::kCancelled:
      return false;
  }
  return false;
}

JobOutcome SolveService::await(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    JobOutcome unknown;
    unknown.abort = AbortReason::kFault;
    return unknown;
  }
  const std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lock, [&job] {
    return job->state == JobState::kDone || job->state == JobState::kCancelled;
  });
  return job->outcome;
}

std::size_t SolveService::queueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

SolveService::Counters SolveService::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void SolveService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && threads_.empty()) return;  // already shut down
    stopping_ = true;
    // Queued jobs never run; running jobs are interrupted and complete
    // with kCancelled through the normal worker path.
    for (const std::shared_ptr<Job>& job : queue_) {
      job->state = JobState::kCancelled;
      job->abortFromOutside(AbortReason::kCancelled);
      job->outcome.abort = AbortReason::kCancelled;
      job->outcome.queue_seconds =
          secondsBetween(job->submit_time, Clock::now());
      ++counters_.cancelled_queued;
    }
    queue_.clear();
    for (const std::shared_ptr<Job>& job : running_) {
      job->abortFromOutside(AbortReason::kCancelled);
    }
    queue_cv_.notify_all();
    watchdog_cv_.notify_all();
    done_cv_.notify_all();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (watchdog_.joinable()) watchdog_.join();
}

std::shared_ptr<SolveService::Job> SolveService::popBest() {
  auto best = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    const bool higher =
        (*it)->limits.priority > (*best)->limits.priority ||
        ((*it)->limits.priority == (*best)->limits.priority &&
         (*it)->seq < (*best)->seq);
    if (higher) best = it;
  }
  std::shared_ptr<Job> job = *best;
  queue_.erase(best);
  return job;
}

void SolveService::workerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    std::shared_ptr<Job> job = popBest();
    job->state = JobState::kRunning;
    job->start_time = Clock::now();
    if (metrics_) {
      metrics_->queue_depth->set(static_cast<std::int64_t>(queue_.size()));
    }
    if (opts_.trace != nullptr && opts_.trace->enabled()) {
      opts_.trace->span(obs::TraceCat::kJob, "job-queue",
                        opts_.trace->timestampUs(job->submit_time),
                        opts_.trace->timestampUs(job->start_time), "job",
                        static_cast<std::int64_t>(job->id));
    }
    if (job->limits.wall_seconds || opts_.default_max_job_seconds) {
      double limit = job->limits.wall_seconds
                         ? *job->limits.wall_seconds
                         : *opts_.default_max_job_seconds;
      if (job->limits.wall_seconds && opts_.default_max_job_seconds) {
        limit = std::min(limit, *opts_.default_max_job_seconds);
      }
      job->watchdog_deadline =
          job->start_time + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(limit));
    }
    running_.push_back(job);
    if (metrics_) {
      metrics_->running->set(static_cast<std::int64_t>(running_.size()));
    }

    lock.unlock();
    runJob(job);
    lock.lock();

    running_.erase(std::find(running_.begin(), running_.end(), job));
    job->outcome.abort = job->abortReason();
    job->outcome.queue_seconds =
        secondsBetween(job->submit_time, job->start_time);
    job->outcome.solve_seconds =
        secondsBetween(job->start_time, Clock::now());
    job->state = JobState::kDone;
    ++counters_.completed;
    if (opts_.trace != nullptr && opts_.trace->enabled()) {
      opts_.trace->span(obs::TraceCat::kJob, "job-run",
                        opts_.trace->timestampUs(job->start_time),
                        opts_.trace->nowUs(), "job",
                        static_cast<std::int64_t>(job->id));
    }
    if (metrics_) {
      metrics_->completed->add(1);
      metrics_->running->set(static_cast<std::int64_t>(running_.size()));
      metrics_->queue_us->observe(
          static_cast<std::int64_t>(job->outcome.queue_seconds * 1e6));
      metrics_->solve_us->observe(
          static_cast<std::int64_t>(job->outcome.solve_seconds * 1e6));
      updateMemGauge();
      // Mirror the job's final CDCL statistics into the registry's
      // msu_solver_* counters — the same numbers the harness tables
      // print, absorbed instead of duplicated.
      exportStatsToMetrics(*opts_.metrics, job->outcome.result.satStats);
    }
    done_cv_.notify_all();
  }
}

void SolveService::runJob(const std::shared_ptr<Job>& job) {
  // Translate JobLimits into the engine's cooperative Budget. The
  // interrupt flag and abort sink live in the Job (which we keep alive
  // by shared_ptr), so every Budget copy the engine makes stays wired
  // to this job.
  MaxSatOptions opts = opts_.base;
  opts.budget = Budget{};
  if (job->limits.wall_seconds) {
    opts.budget.setWallClock(*job->limits.wall_seconds);
  }
  if (job->limits.max_conflicts) {
    opts.budget.setMaxConflicts(*job->limits.max_conflicts);
  }
  if (job->limits.max_memory_bytes) {
    opts.budget.setMaxMemory(*job->limits.max_memory_bytes);
  }
  opts.budget.setInterrupt(&job->interrupt);
  opts.budget.setAbortSink(&job->abort);
  opts.sat.fault = job->limits.fault;
  // Charge the formula's own storage to the solver's cooperative
  // accounting, so a JobLimits::max_memory_bytes cap covers the whole
  // job footprint (parse product included), not just solver structures.
  opts.sat.external_mem_bytes = job->formula_mem;

  // Observability wiring — all observational, none of it steers the
  // search: the progress sink receives per-oracle-call deltas, the
  // onBounds wrapper feeds bound improvements into the sink (then
  // chains to any caller-installed callback), and the tracer/registry
  // fan through to the engine's solvers.
  opts.progress = &job->progress;
  obs::ProgressSink* const sink = &job->progress;
  auto chained = opts.onBounds;
  opts.onBounds = [sink, chained](Weight lower, Weight upper) {
    sink->noteBounds(lower, upper);
    if (chained) chained(lower, upper);
  };
  opts.sat.trace = opts_.trace;
  if (opts_.metrics != nullptr) {
    opts.metrics = opts_.metrics;
    opts.sat.drain_size_hist = &opts_.metrics->histogram(
        "msu_share_drain_scanned", "Clauses scanned per import drain");
  }

  // A per-job engine override (validated at submit()) wins over the
  // service-wide default.
  const std::string& engineName =
      job->limits.engine ? *job->limits.engine : opts_.engine;
  std::unique_ptr<MaxSatSolver> engine = makeSolver(engineName, opts);
  assert(engine != nullptr);
  if (engine == nullptr) {  // release-build guard for unknown names
    opts.budget.noteAbort(AbortReason::kFault);
    return;
  }
  job->outcome.result = engine->solve(job->formula);
}

void SolveService::watchdogLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(
        lock, std::chrono::duration<double>(opts_.watchdog_period_s),
        [this] { return stopping_; });
    if (stopping_) return;
    const Clock::time_point now = Clock::now();
    for (const std::shared_ptr<Job>& job : running_) {
      if (job->watchdog_deadline && now >= *job->watchdog_deadline &&
          !job->interrupt.load(std::memory_order_relaxed)) {
        // Reason before flag, like every external canceller.
        job->abortFromOutside(AbortReason::kDeadline);
      }
    }
    // Piggy-back the service-wide memory gauge on the watchdog cadence:
    // it already scans running_ under the lock.
    updateMemGauge();
  }
}

void SolveService::updateMemGauge() {
  if (!metrics_) return;
  std::int64_t total = 0;
  for (const std::shared_ptr<Job>& job : running_) {
    total += std::max(job->progress.mem_bytes.load(std::memory_order_relaxed),
                      job->formula_mem);
  }
  metrics_->mem_bytes->set(total);
  metrics_->peak_rss->set(obs::peakRssBytes());
}

}  // namespace msu
